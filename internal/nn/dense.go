package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Flatten reshapes [N, ...] to [N, prod(...)]. It has no parameters.
type Flatten struct {
	LayerName string
	lastShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{LayerName: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.LayerName }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	if len(in) < 2 {
		panic(fmt.Sprintf("nn: %s needs rank>=2 input, got %v", f.LayerName, in))
	}
	return []int{in[0], tensor.Prod(in[1:])}
}

// MAdds implements Layer (flatten is free).
func (f *Flatten) MAdds(in []int) int64 { return 0 }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if training {
		f.lastShape = append([]int(nil), x.Shape...)
	}
	return x.Reshape(f.OutShape(x.Shape)...)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.lastShape == nil {
		panic(fmt.Sprintf("nn: %s Backward without training Forward", f.LayerName))
	}
	out := grad.Reshape(f.lastShape...)
	f.lastShape = nil
	return out
}

// Dense is a fully-connected layer: y = xW + b, with x of shape
// [N, in] and W of shape [in, out].
type Dense struct {
	LayerName string
	In, Out   int

	W *Param // [in, out]
	B *Param // [out]

	lastX *tensor.Tensor
}

// NewDense constructs a fully-connected layer with He initialization.
func NewDense(name string, in, out int, rng *tensor.RNG) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: bad Dense dims in=%d out=%d", in, out))
	}
	d := &Dense{
		LayerName: name, In: in, Out: out,
		W: newParam(name+"/weights", in, out),
		B: newParam(name+"/bias", out),
	}
	rng.FillHe(d.W.Value, in)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.LayerName }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int {
	if len(in) != 2 || in[1] != d.In {
		panic(fmt.Sprintf("nn: %s expects [N,%d] input, got %v", d.LayerName, d.In, in))
	}
	return []int{in[0], d.Out}
}

// MAdds implements Layer using the paper's fully-connected formula
// N_units · H · W · M (here the flattened input is H·W·M).
func (d *Dense) MAdds(in []int) int64 {
	out := d.OutShape(in)
	return int64(out[0]) * int64(d.In) * int64(d.Out)
}

// Forward implements Layer. It runs as a GEMM (fastpath.go); the
// historical per-row loop survives as the reference kernel in
// reference.go.
func (d *Dense) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	n := d.OutShape(x.Shape)[0]
	out := tensor.New(n, d.Out)
	ep := tensor.Epilogue{Bias: d.B.Value.Data}
	denseForward(d, x.Data, out.Data, n, ep, convScratch{})
	if training {
		d.lastX = x
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastX == nil {
		panic(fmt.Sprintf("nn: %s Backward without training Forward", d.LayerName))
	}
	x := d.lastX
	n := x.Shape[0]
	gin := tensor.New(n, d.In)
	gw, gb := d.W.Grad.Data, d.B.Grad.Data
	wd := d.W.Value.Data
	for b := 0; b < n; b++ {
		g := grad.Data[b*d.Out : (b+1)*d.Out]
		for j, gv := range g {
			gb[j] += gv
		}
		row := x.Data[b*d.In : (b+1)*d.In]
		girow := gin.Data[b*d.In : (b+1)*d.In]
		for i, xv := range row {
			wRow := wd[i*d.Out : (i+1)*d.Out]
			gwRow := gw[i*d.Out : (i+1)*d.Out]
			var gi float32
			for j, gv := range g {
				gwRow[j] += xv * gv
				gi += wRow[j] * gv
			}
			girow[i] = gi
		}
	}
	d.lastX = nil
	return gin
}
