package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Dropout randomly zeroes a fraction of activations during training
// (inverted dropout: survivors are scaled by 1/(1-rate) so inference
// is an identity). Microclassifier training sets can be small — a few
// hundred positive frames — so a dropout stage before the
// fully-connected head is a useful regularizer.
type Dropout struct {
	LayerName string
	// Rate is the drop probability in [0,1).
	Rate float32

	rng      *tensor.RNG
	lastMask []float32
}

// NewDropout constructs a dropout layer with its own deterministic
// mask stream.
func NewDropout(name string, rate float32, seed int64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{LayerName: name, Rate: rate, rng: tensor.NewRNG(seed)}
}

// Name implements Layer.
func (d *Dropout) Name() string { return d.LayerName }

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int { return append([]int(nil), in...) }

// MAdds implements Layer.
func (d *Dropout) MAdds(in []int) int64 { return 0 }

// Forward implements Layer. Inference mode is the identity.
func (d *Dropout) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if !training || d.Rate == 0 {
		return x
	}
	out := tensor.New(x.Shape...)
	mask := make([]float32, x.Len())
	scale := 1 / (1 - d.Rate)
	for i, v := range x.Data {
		if d.rng.Float32() >= d.Rate {
			mask[i] = scale
			out.Data[i] = v * scale
		}
	}
	d.lastMask = mask
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastMask == nil {
		panic(fmt.Sprintf("nn: %s Backward without training Forward", d.LayerName))
	}
	out := tensor.New(grad.Shape...)
	for i, m := range d.lastMask {
		out.Data[i] = grad.Data[i] * m
	}
	d.lastMask = nil
	return out
}
