package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ReLU is max(0, x). With Cap > 0 it becomes a capped ReLU (ReLU6 when
// Cap = 6, which the paper's localized binary classifier uses before
// its fully-connected layer).
type ReLU struct {
	LayerName string
	Cap       float32 // 0 means uncapped

	lastOutMask []uint8 // 1 where the unit was in the linear region
}

// NewReLU constructs an uncapped ReLU.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// NewReLU6 constructs a ReLU capped at 6.
func NewReLU6(name string) *ReLU { return &ReLU{LayerName: name, Cap: 6} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.LayerName }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return append([]int(nil), in...) }

// MAdds implements Layer (activations are counted as free, matching
// the paper's multiply-add proxy).
func (r *ReLU) MAdds(in []int) int64 { return 0 }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	var mask []uint8
	if training {
		mask = make([]uint8, len(x.Data))
	}
	for i, v := range x.Data {
		switch {
		case v <= 0:
			// out stays 0, mask stays 0
		case r.Cap > 0 && v >= r.Cap:
			out.Data[i] = r.Cap
		default:
			out.Data[i] = v
			if training {
				mask[i] = 1
			}
		}
	}
	if training {
		r.lastOutMask = mask
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.lastOutMask == nil {
		panic(fmt.Sprintf("nn: %s Backward without training Forward", r.LayerName))
	}
	out := tensor.New(grad.Shape...)
	for i, m := range r.lastOutMask {
		if m == 1 {
			out.Data[i] = grad.Data[i]
		}
	}
	r.lastOutMask = nil
	return out
}

// Sigmoid is the logistic activation 1/(1+e^-x), used as the output of
// every binary classifier in the paper.
type Sigmoid struct {
	LayerName string
	lastOut   *tensor.Tensor
}

// NewSigmoid constructs a sigmoid layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{LayerName: name} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return s.LayerName }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutShape implements Layer.
func (s *Sigmoid) OutShape(in []int) []int { return append([]int(nil), in...) }

// MAdds implements Layer.
func (s *Sigmoid) MAdds(in []int) int64 { return 0 }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		out.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	if training {
		s.lastOut = out
	}
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if s.lastOut == nil {
		panic(fmt.Sprintf("nn: %s Backward without training Forward", s.LayerName))
	}
	out := tensor.New(grad.Shape...)
	for i, y := range s.lastOut.Data {
		out.Data[i] = grad.Data[i] * y * (1 - y)
	}
	s.lastOut = nil
	return out
}
