package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers controls the maximum goroutine fan-out used inside
// convolution loops. It defaults to GOMAXPROCS. Set it to 1 for fully
// deterministic single-threaded timing (the performance experiments in
// internal/experiments do this so that throughput trends reflect
// algorithmic cost, not scheduler noise).
var Workers = runtime.GOMAXPROCS(0)

// parallelThreshold is the minimum number of loop iterations before
// parFor bothers spawning goroutines.
const parallelThreshold = 8

// ForEach runs fn(i) for i in [0,n) across up to workers goroutines,
// handing out iterations dynamically so unequal per-iteration costs
// balance (chunked splitting, as parFor does, would pin a slow
// iteration run to one goroutine). workers <= 1 runs inline.
// Iterations must be independent. This is the fan-out primitive the
// edge runtime uses to spread microclassifiers across cores.
func ForEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// parFor runs fn(i) for i in [0,n), splitting the range across
// Workers goroutines when n is large enough. Iterations must be
// independent.
func parFor(n int, fn func(i int)) {
	w := Workers
	if w > n {
		w = n
	}
	if w <= 1 || n < parallelThreshold {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(start, end)
	}
	wg.Wait()
}
