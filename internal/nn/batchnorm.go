package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm normalizes each channel of an NHWC tensor to zero mean and
// unit variance over the batch and spatial dims, then applies a learned
// per-channel scale (gamma) and shift (beta). During inference it uses
// running statistics accumulated with exponential moving averages.
//
// MobileNet v1 places a BatchNorm after every convolution; the builder
// in internal/mobilenet exposes it behind a flag (folded away by
// default, since with He-initialized random weights the activations
// stay well-scaled without it).
type BatchNorm struct {
	LayerName string
	Channels  int
	Momentum  float32 // EMA momentum for running stats, e.g. 0.9
	Eps       float32

	Gamma *Param // [C]
	Beta  *Param // [C]

	// RunningMean and RunningVar are the inference-time statistics.
	RunningMean *tensor.Tensor // [C]
	RunningVar  *tensor.Tensor // [C]

	// Backward cache.
	lastXHat *tensor.Tensor
	lastStd  []float32
	lastN    int
}

// NewBatchNorm constructs a batch-normalization layer over channels.
func NewBatchNorm(name string, channels int) *BatchNorm {
	if channels <= 0 {
		panic(fmt.Sprintf("nn: bad BatchNorm channels=%d", channels))
	}
	b := &BatchNorm{
		LayerName: name, Channels: channels, Momentum: 0.9, Eps: 1e-5,
		Gamma:       newParam(name+"/gamma", channels),
		Beta:        newParam(name+"/beta", channels),
		RunningMean: tensor.New(channels),
		RunningVar:  tensor.New(channels),
	}
	b.Gamma.Value.Fill(1)
	b.RunningVar.Fill(1)
	return b
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.LayerName }

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// OutShape implements Layer.
func (b *BatchNorm) OutShape(in []int) []int {
	_, _, _, c := checkRank4(b.LayerName, in)
	if c != b.Channels {
		panic(fmt.Sprintf("nn: %s expects %d channels, got %d", b.LayerName, b.Channels, c))
	}
	return append([]int(nil), in...)
}

// MAdds implements Layer: one multiply-add per element (scale+shift;
// normalization folds into it at inference).
func (b *BatchNorm) MAdds(in []int) int64 {
	return int64(tensor.Prod(in))
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	n, h, w, c := checkRank4(b.LayerName, x.Shape)
	if c != b.Channels {
		panic(fmt.Sprintf("nn: %s expects %d channels, got %d", b.LayerName, b.Channels, c))
	}
	out := tensor.New(x.Shape...)
	gamma, beta := b.Gamma.Value.Data, b.Beta.Value.Data
	count := n * h * w

	if !training {
		for ci := 0; ci < c; ci++ {
			invStd := float32(1 / math.Sqrt(float64(b.RunningVar.Data[ci]+b.Eps)))
			scale := gamma[ci] * invStd
			shift := beta[ci] - b.RunningMean.Data[ci]*scale
			for p := 0; p < count; p++ {
				off := p*c + ci
				out.Data[off] = x.Data[off]*scale + shift
			}
		}
		return out
	}

	mean := make([]float64, c)
	for p := 0; p < count; p++ {
		for ci := 0; ci < c; ci++ {
			mean[ci] += float64(x.Data[p*c+ci])
		}
	}
	for ci := range mean {
		mean[ci] /= float64(count)
	}
	variance := make([]float64, c)
	for p := 0; p < count; p++ {
		for ci := 0; ci < c; ci++ {
			d := float64(x.Data[p*c+ci]) - mean[ci]
			variance[ci] += d * d
		}
	}
	for ci := range variance {
		variance[ci] /= float64(count)
	}

	xhat := tensor.New(x.Shape...)
	std := make([]float32, c)
	for ci := 0; ci < c; ci++ {
		std[ci] = float32(math.Sqrt(variance[ci] + float64(b.Eps)))
	}
	for p := 0; p < count; p++ {
		for ci := 0; ci < c; ci++ {
			off := p*c + ci
			xh := (x.Data[off] - float32(mean[ci])) / std[ci]
			xhat.Data[off] = xh
			out.Data[off] = gamma[ci]*xh + beta[ci]
		}
	}
	for ci := 0; ci < c; ci++ {
		b.RunningMean.Data[ci] = b.Momentum*b.RunningMean.Data[ci] + (1-b.Momentum)*float32(mean[ci])
		b.RunningVar.Data[ci] = b.Momentum*b.RunningVar.Data[ci] + (1-b.Momentum)*float32(variance[ci])
	}
	b.lastXHat, b.lastStd, b.lastN = xhat, std, count
	return out
}

// Backward implements Layer using the standard batch-norm gradient.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		panic(fmt.Sprintf("nn: %s Backward without training Forward", b.LayerName))
	}
	c := b.Channels
	count := b.lastN
	gamma := b.Gamma.Value.Data
	gGamma, gBeta := b.Gamma.Grad.Data, b.Beta.Grad.Data

	sumG := make([]float64, c)
	sumGX := make([]float64, c)
	for p := 0; p < count; p++ {
		for ci := 0; ci < c; ci++ {
			off := p*c + ci
			g := float64(grad.Data[off])
			sumG[ci] += g
			sumGX[ci] += g * float64(b.lastXHat.Data[off])
		}
	}
	for ci := 0; ci < c; ci++ {
		gGamma[ci] += float32(sumGX[ci])
		gBeta[ci] += float32(sumG[ci])
	}

	gin := tensor.New(b.lastXHat.Shape...)
	for p := 0; p < count; p++ {
		for ci := 0; ci < c; ci++ {
			off := p*c + ci
			g := float64(grad.Data[off])
			xh := float64(b.lastXHat.Data[off])
			gin.Data[off] = float32(float64(gamma[ci]) / float64(b.lastStd[ci]) / float64(count) *
				(float64(count)*g - sumG[ci] - xh*sumGX[ci]))
		}
	}
	b.lastXHat, b.lastStd = nil, nil
	return gin
}
