package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// close5 checks |a-b| <= tol*(1+|b|) element-wise — the fast path must
// match the naive reference kernels to float32 working precision.
func close5(t *testing.T, who string, got, want *tensor.Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v vs %v", who, got.Shape, want.Shape)
	}
	for i := range want.Data {
		g, w := float64(got.Data[i]), float64(want.Data[i])
		if math.Abs(g-w) > tol*(1+math.Abs(w)) {
			t.Fatalf("%s: [%d] fast %v vs reference %v (tol %v)", who, i, g, w, tol)
		}
	}
}

// convShapeTable covers the satellite's required shape space: Same and
// Valid padding, stride > 1, odd-pad edges (even inputs with Same
// padding produce asymmetric pads), and 1×1 pointwise convolutions.
var convShapeTable = []struct {
	name           string
	h, w, ic, f    int
	kernel, stride int
	pad            Padding
	batch          int
}{
	{"same-k3s1", 9, 11, 3, 8, 3, 1, Same, 1},
	{"same-k3s2-even", 8, 12, 4, 6, 3, 2, Same, 2},
	{"same-k3s2-odd", 7, 9, 5, 7, 3, 2, Same, 1},
	{"same-k5s1", 10, 10, 2, 5, 5, 1, Same, 1},
	{"same-k5s3", 11, 13, 3, 4, 5, 3, Same, 1},
	{"valid-k3s1", 9, 9, 3, 8, 3, 1, Valid, 1},
	{"valid-k3s2", 10, 8, 6, 5, 3, 2, Valid, 2},
	{"valid-k5s2", 12, 11, 2, 9, 5, 2, Valid, 1},
	{"pointwise-1x1", 6, 7, 16, 12, 1, 1, Same, 1},
	{"pointwise-1x1-batch", 5, 5, 8, 32, 1, 1, Same, 3},
	{"tiny-map", 2, 3, 64, 33, 3, 1, Same, 1},
	{"kernel-larger-than-input", 3, 3, 2, 4, 5, 1, Same, 1},
}

func TestConv2DFastMatchesReference(t *testing.T) {
	for _, tc := range convShapeTable {
		t.Run(tc.name, func(t *testing.T) {
			g := tensor.NewRNG(3)
			l := NewConv2D("c", tc.ic, tc.f, tc.kernel, tc.stride, tc.pad, g)
			g.FillNormal(l.B.Value, 0, 0.5)
			x := tensor.New(tc.batch, tc.h, tc.w, tc.ic)
			g.FillNormal(x, 0, 1)
			close5(t, tc.name, l.Forward(x, false), l.forwardReference(x), 1e-5)
		})
	}
}

func TestDepthwiseFastMatchesReference(t *testing.T) {
	for _, tc := range convShapeTable {
		t.Run(tc.name, func(t *testing.T) {
			g := tensor.NewRNG(4)
			l := NewDepthwiseConv2D("d", tc.ic, tc.kernel, tc.stride, tc.pad, g)
			g.FillNormal(l.B.Value, 0, 0.5)
			x := tensor.New(tc.batch, tc.h, tc.w, tc.ic)
			g.FillNormal(x, 0, 1)
			close5(t, tc.name, l.Forward(x, false), l.forwardReference(x), 1e-5)
		})
	}
}

func TestDenseFastMatchesReference(t *testing.T) {
	for _, tc := range []struct{ batch, in, out int }{
		{1, 7, 5}, {1, 200, 1}, {3, 64, 200}, {16, 33, 17}, {64, 128, 32},
	} {
		g := tensor.NewRNG(5)
		l := NewDense("fc", tc.in, tc.out, g)
		g.FillNormal(l.B.Value, 0, 0.5)
		x := tensor.New(tc.batch, tc.in)
		g.FillNormal(x, 0, 1)
		close5(t, "dense", l.Forward(x, false), l.forwardReference(x), 1e-5)
	}
}

// buildFusedNet assembles a conv+bn+relu / depthwise / dense stack that
// exercises every fusion the compiler performs, with non-trivial
// batch-norm running statistics.
func buildFusedNet(t *testing.T) (*Network, *tensor.Tensor) {
	t.Helper()
	g := tensor.NewRNG(6)
	net := NewNetwork("fused")
	conv := NewConv2D("conv1", 3, 8, 3, 2, Same, g)
	g.FillNormal(conv.B.Value, 0, 0.5)
	bn1 := NewBatchNorm("conv1/bn", 8)
	g.FillNormal(bn1.Gamma.Value, 1, 0.2)
	g.FillNormal(bn1.Beta.Value, 0, 0.2)
	g.FillNormal(bn1.RunningMean, 0, 0.3)
	bn1.RunningVar.Fill(1.3)
	dw := NewDepthwiseConv2D("conv2/dw", 8, 3, 1, Same, g)
	bn2 := NewBatchNorm("conv2/bn", 8)
	g.FillNormal(bn2.Beta.Value, 0, 0.1)
	bn2.RunningVar.Fill(0.8)
	net.Add(conv).Add(bn1).Add(NewReLU("conv1/relu")).
		Add(dw).Add(bn2).Add(NewReLU("conv2/relu")).
		Add(NewConv2D("conv3/sep", 8, 16, 1, 1, Same, g)).
		Add(NewReLU("conv3/relu")).
		Add(NewMaxPool2D("pool", 2, 2, Same)).
		Add(NewFlatten("flatten")).
		Add(NewDense("fc1", 16*3*4, 10, g)).
		Add(NewReLU6("fc1/relu6")).
		Add(NewDense("fc2", 10, 1, g)).
		Add(NewSigmoid("out"))
	x := tensor.New(1, 9, 13, 3)
	g.FillNormal(x, 0, 1)
	return net, x
}

// TestProgramMatchesNetwork pins the frozen, fused program against the
// layer-by-layer inference pass, including the batch-norm fold and the
// intermediate tap outputs.
func TestProgramMatchesNetwork(t *testing.T) {
	net, x := buildFusedNet(t)
	prog, err := Compile(net, x.Shape)
	if err != nil {
		t.Fatal(err)
	}
	ws := prog.NewWorkspace()

	want, wantTaps := net.ForwardTaps(x.Clone(), false, "conv1/relu", "conv2/relu", "conv3/relu", "out")
	got := prog.Run(ws, x)
	close5(t, "final", got, want, 1e-5)
	for tap, w := range wantTaps {
		idx, ok := prog.OpIndex(tap)
		if !ok {
			t.Fatalf("program has no tap %q", tap)
		}
		close5(t, tap, prog.Output(ws, idx), w, 1e-5)
	}
}

// TestProgramTracksLiveWeights verifies that a compiled program reads
// live parameters: mutating weights after Compile must change the
// program's output without recompilation (the property that makes
// interleaved training and frozen inference safe).
func TestProgramTracksLiveWeights(t *testing.T) {
	net, x := buildFusedNet(t)
	prog, err := Compile(net, x.Shape)
	if err != nil {
		t.Fatal(err)
	}
	ws := prog.NewWorkspace()
	before := prog.Run(ws, x).Clone()

	for _, p := range net.Params() {
		for i := range p.Value.Data {
			p.Value.Data[i] *= 1.5
		}
	}
	after := prog.Run(ws, x)
	close5(t, "live-weights", after, net.Forward(x.Clone(), false), 1e-5)
	same := true
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("program output unchanged after weight mutation: weights were snapshotted")
	}
}

// TestProgramZeroAlloc pins the steady-state execution of a compiled
// program at zero heap allocations per frame.
func TestProgramZeroAlloc(t *testing.T) {
	net, x := buildFusedNet(t)
	prog, err := Compile(net, x.Shape)
	if err != nil {
		t.Fatal(err)
	}
	ws := prog.NewWorkspace()
	prog.Run(ws, x) // warm up
	if n := testing.AllocsPerRun(50, func() { prog.Run(ws, x) }); n != 0 {
		t.Fatalf("program Run allocates %v objects per frame, want 0", n)
	}
}

// TestFrozenInferenceDoesNotContaminateTraining is the satellite
// regression: running fused inference between a training forward and
// its backward must not disturb activation caches, ReLU masks,
// batch-norm running statistics, or the resulting gradients.
func TestFrozenInferenceDoesNotContaminateTraining(t *testing.T) {
	build := func() (*Network, *tensor.Tensor) { return buildFusedNet(t) }

	// Gradients without any interleaved inference.
	netA, x := build()
	outA := netA.Forward(x.Clone(), true)
	gradA := tensor.New(outA.Shape...)
	gradA.Fill(1)
	netA.Backward(gradA)

	// Same training step, but with frozen inference squeezed between
	// forward and backward.
	netB, _ := build()
	prog, err := Compile(netB, x.Shape)
	if err != nil {
		t.Fatal(err)
	}
	ws := prog.NewWorkspace()
	outB := netB.Forward(x.Clone(), true)

	var statsBefore []float32
	for _, l := range netB.Layers() {
		if bn, ok := l.(*BatchNorm); ok {
			statsBefore = append(statsBefore, bn.RunningMean.Data...)
			statsBefore = append(statsBefore, bn.RunningVar.Data...)
		}
	}
	for i := 0; i < 3; i++ {
		prog.Run(ws, x)
	}
	var statsAfter []float32
	for _, l := range netB.Layers() {
		if bn, ok := l.(*BatchNorm); ok {
			statsAfter = append(statsAfter, bn.RunningMean.Data...)
			statsAfter = append(statsAfter, bn.RunningVar.Data...)
		}
	}
	for i := range statsBefore {
		if statsBefore[i] != statsAfter[i] {
			t.Fatalf("frozen inference moved batch-norm running stats at %d: %v -> %v",
				i, statsBefore[i], statsAfter[i])
		}
	}

	gradB := tensor.New(outB.Shape...)
	gradB.Fill(1)
	netB.Backward(gradB) // panics if any lastX cache was clobbered

	paramsA, paramsB := netA.Params(), netB.Params()
	for pi := range paramsA {
		for i := range paramsA[pi].Grad.Data {
			if paramsA[pi].Grad.Data[i] != paramsB[pi].Grad.Data[i] {
				t.Fatalf("param %s grad[%d] differs after interleaved frozen inference: %v vs %v",
					paramsA[pi].Name, i, paramsA[pi].Grad.Data[i], paramsB[pi].Grad.Data[i])
			}
		}
	}
}

// TestForwardDeterministicAcrossWorkers pins the training-path forward
// to worker-count independence: the GEMM row blocking must produce
// bitwise identical outputs for any parallel split.
func TestForwardDeterministicAcrossWorkers(t *testing.T) {
	g := tensor.NewRNG(9)
	l := NewConv2D("c", 8, 16, 3, 1, Same, g)
	x := tensor.New(2, 17, 19, 8)
	g.FillNormal(x, 0, 1)

	old := Workers
	defer func() { Workers = old }()
	Workers = 1
	serial := l.Forward(x, false)
	Workers = 7
	parallel := l.Forward(x, false)
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("conv forward depends on worker count at %d", i)
		}
	}
}
