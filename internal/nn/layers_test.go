package nn

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/tensor"
)

func TestOutDim(t *testing.T) {
	cases := []struct {
		in, k, s   int
		pad        Padding
		out, padLo int
	}{
		{8, 3, 1, Valid, 6, 0},
		{8, 3, 1, Same, 8, 1},
		{8, 3, 2, Same, 4, 0},
		{9, 3, 2, Same, 5, 1},
		{7, 3, 2, Valid, 3, 0},
		{2, 3, 1, Valid, 0, 0},
		{224, 3, 2, Same, 112, 0},
	}
	for _, c := range cases {
		out, padLo := outDim(c.in, c.k, c.s, c.pad)
		if out != c.out || padLo != c.padLo {
			t.Errorf("outDim(%d,%d,%d,%v) = (%d,%d), want (%d,%d)", c.in, c.k, c.s, c.pad, out, padLo, c.out, c.padLo)
		}
	}
}

func TestConvKnownValues(t *testing.T) {
	g := tensor.NewRNG(1)
	c := NewConv2D("c", 1, 1, 3, 1, Valid, g)
	// 3x3 identity-ish: kernel of all ones, bias 2.
	c.W.Value.Fill(1)
	c.B.Value.Fill(2)
	x := tensor.New(1, 3, 3, 1)
	for i := range x.Data {
		x.Data[i] = float32(i) // 0..8, sum 36
	}
	out := c.Forward(x, false)
	if !reflect.DeepEqual(out.Shape, []int{1, 1, 1, 1}) {
		t.Fatalf("conv out shape %v", out.Shape)
	}
	if out.Data[0] != 38 {
		t.Fatalf("conv value %v, want 38", out.Data[0])
	}
}

func TestConvSamePaddingCenters(t *testing.T) {
	g := tensor.NewRNG(1)
	c := NewConv2D("c", 1, 1, 3, 1, Same, g)
	c.W.Value.Zero()
	// Only the center tap is 1: output must equal input.
	c.W.Value.Set(1, 1, 1, 0, 0)
	c.B.Value.Zero()
	x := tensor.New(1, 4, 5, 1)
	tensor.NewRNG(2).FillNormal(x, 0, 1)
	out := c.Forward(x, false)
	if !out.SameShape(x) {
		t.Fatalf("same-padded conv changed shape: %v", out.Shape)
	}
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatalf("center-tap conv not identity at %d", i)
		}
	}
}

func TestDepthwiseActsPerChannel(t *testing.T) {
	g := tensor.NewRNG(1)
	d := NewDepthwiseConv2D("d", 2, 1, 1, Same, g)
	d.W.Value.Set(2, 0, 0, 0) // channel 0 doubled
	d.W.Value.Set(3, 0, 0, 1) // channel 1 tripled
	d.B.Value.Zero()
	x := tensor.New(1, 2, 2, 2)
	x.Fill(1)
	out := d.Forward(x, false)
	for p := 0; p < 4; p++ {
		if out.Data[p*2] != 2 || out.Data[p*2+1] != 3 {
			t.Fatalf("depthwise mixed channels: %v", out.Data)
		}
	}
}

func TestDenseKnownValues(t *testing.T) {
	g := tensor.NewRNG(1)
	d := NewDense("fc", 2, 2, g)
	copy(d.W.Value.Data, []float32{1, 2, 3, 4}) // [[1,2],[3,4]]
	copy(d.B.Value.Data, []float32{10, 20})
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	out := d.Forward(x, false)
	if out.Data[0] != 14 || out.Data[1] != 26 {
		t.Fatalf("dense = %v, want [14 26]", out.Data)
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	m := NewMaxPool2D("mp", 2, 2, Valid)
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4, 1)
	out := m.Forward(x, false)
	want := []float32{6, 8, 14, 16}
	if !reflect.DeepEqual(out.Data, want) {
		t.Fatalf("maxpool = %v, want %v", out.Data, want)
	}
}

func TestGlobalMaxFindsAnyLocation(t *testing.T) {
	gm := NewGlobalMax("gm")
	x := tensor.New(1, 5, 7, 1)
	x.Fill(-1)
	x.Set(9, 0, 3, 6, 0)
	out := gm.Forward(x, false)
	if out.Data[0] != 9 {
		t.Fatalf("global max = %v, want 9", out.Data[0])
	}
}

func TestSigmoidRange(t *testing.T) {
	s := NewSigmoid("s")
	x := tensor.FromSlice([]float32{-100, 0, 100}, 3)
	out := s.Forward(x, false)
	if out.Data[0] > 1e-6 || out.Data[1] != 0.5 || out.Data[2] < 1-1e-6 {
		t.Fatalf("sigmoid = %v", out.Data)
	}
}

func TestReLU6Caps(t *testing.T) {
	r := NewReLU6("r")
	x := tensor.FromSlice([]float32{-3, 3, 9}, 3)
	out := r.Forward(x, false)
	if out.Data[0] != 0 || out.Data[1] != 3 || out.Data[2] != 6 {
		t.Fatalf("relu6 = %v", out.Data)
	}
}

func TestMAddsFormulas(t *testing.T) {
	g := tensor.NewRNG(1)
	// Paper §4.5: conv madds = (H/S)(W/S)·M·K²·F.
	c := NewConv2D("c", 16, 32, 3, 2, Same, g)
	in := []int{1, 64, 64, 16}
	want := int64(32*32) * 16 * 9 * 32
	if got := c.MAdds(in); got != want {
		t.Errorf("conv madds = %d, want %d", got, want)
	}
	// Separable: (H/S)(W/S)·M·(K²+F).
	dw, pw := SeparableConv2D("s", 16, 32, 3, 2, Same, g)
	gotSep := dw.MAdds(in) + pw.MAdds(dw.OutShape(in))
	wantSep := int64(32*32) * 16 * (9 + 32)
	if gotSep != wantSep {
		t.Errorf("sepconv madds = %d, want %d", gotSep, wantSep)
	}
	// FC: N·H·W·M.
	d := NewDense("fc", 7*12*512, 200, g)
	if got := d.MAdds([]int{1, 7 * 12 * 512}); got != int64(200*7*12*512) {
		t.Errorf("dense madds = %d", got)
	}
}

func TestNetworkTapsAndForwardTo(t *testing.T) {
	g := tensor.NewRNG(1)
	net := NewNetwork("t").
		Add(NewConv2D("conv1", 1, 2, 3, 1, Same, g)).
		Add(NewReLU("relu1")).
		Add(NewConv2D("conv2", 2, 3, 3, 2, Same, g)).
		Add(NewReLU("relu2"))
	x := randInput(1, 8, 8, 1)

	out, taps := net.ForwardTaps(x, false, "relu1", "relu2")
	if !reflect.DeepEqual(taps["relu1"].Shape, []int{1, 8, 8, 2}) {
		t.Fatalf("tap relu1 shape %v", taps["relu1"].Shape)
	}
	if taps["relu2"] != out {
		t.Fatal("final tap should be the network output")
	}

	mid := net.ForwardTo(x, false, "relu1")
	for i := range mid.Data {
		if mid.Data[i] != taps["relu1"].Data[i] {
			t.Fatal("ForwardTo disagrees with ForwardTaps")
		}
	}
}

func TestNetworkMAddsTo(t *testing.T) {
	g := tensor.NewRNG(1)
	net := NewNetwork("t").
		Add(NewConv2D("conv1", 1, 2, 3, 1, Same, g)).
		Add(NewConv2D("conv2", 2, 3, 3, 1, Same, g))
	in := []int{1, 8, 8, 1}
	m1, shape1 := net.MAddsTo("conv1", in)
	if m1 != net.Layer("conv1").MAdds(in) {
		t.Fatal("MAddsTo(conv1) wrong")
	}
	if !reflect.DeepEqual(shape1, []int{1, 8, 8, 2}) {
		t.Fatalf("MAddsTo shape %v", shape1)
	}
	mAll, _ := net.MAddsTo("conv2", in)
	if mAll != net.MAdds(in) {
		t.Fatal("MAddsTo(last) != MAdds")
	}
}

func TestNetworkDuplicateNamePanics(t *testing.T) {
	g := tensor.NewRNG(1)
	net := NewNetwork("t").Add(NewReLU("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate layer name did not panic")
		}
	}()
	net.Add(NewSigmoid("a"))
	_ = g
}

func TestSerializationRoundTrip(t *testing.T) {
	g := tensor.NewRNG(5)
	build := func(rng *tensor.RNG) *Network {
		return NewNetwork("ser").
			Add(NewConv2D("conv1", 1, 2, 3, 1, Same, rng)).
			Add(NewReLU("r")).
			Add(NewFlatten("fl")).
			Add(NewDense("fc", 2*4*4, 1, rng))
	}
	src := build(g)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := build(tensor.NewRNG(999)) // different init
	if err := LoadParams(&buf, dst); err != nil {
		t.Fatal(err)
	}
	x := randInput(1, 4, 4, 1)
	a := src.Forward(x.Clone(), false)
	b := dst.Forward(x.Clone(), false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("loaded network differs from saved network")
		}
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	g := tensor.NewRNG(5)
	src := NewNetwork("a").Add(NewDense("fc", 4, 2, g))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := NewNetwork("a").Add(NewDense("fc", 5, 2, g))
	if err := LoadParams(&buf, dst); err == nil {
		t.Fatal("shape mismatch not rejected")
	}
}

func TestLoadRejectsMissingParam(t *testing.T) {
	g := tensor.NewRNG(5)
	src := NewNetwork("a").Add(NewDense("fc", 4, 2, g))
	var buf bytes.Buffer
	if err := SaveParams(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := NewNetwork("a").
		Add(NewDense("fc", 4, 2, g)).
		Add(NewDense("fc2", 2, 1, g))
	if err := LoadParams(&buf, dst); err == nil {
		t.Fatal("missing parameter not rejected")
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	x := tensor.New(4, 3, 3, 2)
	g := tensor.NewRNG(7)
	g.FillNormal(x, 5, 3)
	out := bn.Forward(x, true)
	// Per-channel mean ~0 and var ~1 after normalization with
	// gamma=1, beta=0.
	for ci := 0; ci < 2; ci++ {
		var mean, varsum float64
		count := 0
		for p := 0; p < out.Len()/2; p++ {
			mean += float64(out.Data[p*2+ci])
			count++
		}
		mean /= float64(count)
		for p := 0; p < out.Len()/2; p++ {
			d := float64(out.Data[p*2+ci]) - mean
			varsum += d * d
		}
		varsum /= float64(count)
		if mean > 1e-4 || mean < -1e-4 {
			t.Fatalf("bn channel %d mean %v", ci, mean)
		}
		if varsum < 0.98 || varsum > 1.02 {
			t.Fatalf("bn channel %d var %v", ci, varsum)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	bn.RunningMean.Data[0] = 10
	bn.RunningVar.Data[0] = 4
	x := tensor.New(1, 1, 1, 1)
	x.Data[0] = 14
	out := bn.Forward(x, false)
	// (14-10)/sqrt(4+eps) ~= 2.
	if out.Data[0] < 1.99 || out.Data[0] > 2.01 {
		t.Fatalf("bn inference = %v, want ~2", out.Data[0])
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	g := tensor.NewRNG(1)
	c := NewConv2D("c", 3, 8, 3, 1, Same, g)
	x := randInput(4, 16, 16, 3)
	old := Workers
	defer func() { Workers = old }()
	Workers = 1
	serial := c.Forward(x, false)
	Workers = 8
	par := c.Forward(x, false)
	for i := range serial.Data {
		if serial.Data[i] != par.Data[i] {
			t.Fatal("parallel conv differs from serial")
		}
	}
}
