package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D takes the spatial maximum over K×K windows.
type MaxPool2D struct {
	LayerName string
	Kernel    int
	Stride    int
	Pad       Padding

	lastArg   []int32 // flat input offset of each output's max
	lastShape []int
}

// NewMaxPool2D constructs a max-pooling layer.
func NewMaxPool2D(name string, kernel, stride int, pad Padding) *MaxPool2D {
	if kernel <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: bad MaxPool2D params kernel=%d stride=%d", kernel, stride))
	}
	return &MaxPool2D{LayerName: name, Kernel: kernel, Stride: stride, Pad: pad}
}

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.LayerName }

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (m *MaxPool2D) OutShape(in []int) []int {
	n, h, w, c := checkRank4(m.LayerName, in)
	oh, _ := outDim(h, m.Kernel, m.Stride, m.Pad)
	ow, _ := outDim(w, m.Kernel, m.Stride, m.Pad)
	return []int{n, oh, ow, c}
}

// MAdds implements Layer (pooling contributes no multiply-adds).
func (m *MaxPool2D) MAdds(in []int) int64 { return 0 }

// Forward implements Layer.
func (m *MaxPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	n, h, w, c := checkRank4(m.LayerName, x.Shape)
	oh, padY := outDim(h, m.Kernel, m.Stride, m.Pad)
	ow, padX := outDim(w, m.Kernel, m.Stride, m.Pad)
	out := tensor.New(n, oh, ow, c)
	var arg []int32
	if training {
		arg = make([]int32, out.Len())
	}
	k, s := m.Kernel, m.Stride
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := ((b*oh+oy)*ow + ox) * c
				for ci := 0; ci < c; ci++ {
					first := true
					var best float32
					var bestOff int32
					for ky := 0; ky < k; ky++ {
						iy := oy*s - padY + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < k; kx++ {
							ix := ox*s - padX + kx
							if ix < 0 || ix >= w {
								continue
							}
							off := ((b*h+iy)*w+ix)*c + ci
							v := x.Data[off]
							if first || v > best {
								best, bestOff, first = v, int32(off), false
							}
						}
					}
					out.Data[dst+ci] = best
					if training {
						arg[dst+ci] = bestOff
					}
				}
			}
		}
	}
	if training {
		m.lastArg = arg
		m.lastShape = append([]int(nil), x.Shape...)
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.lastArg == nil {
		panic(fmt.Sprintf("nn: %s Backward without training Forward", m.LayerName))
	}
	gin := tensor.New(m.lastShape...)
	for i, off := range m.lastArg {
		gin.Data[off] += grad.Data[i]
	}
	m.lastArg, m.lastShape = nil, nil
	return gin
}

// AvgPool2D averages over K×K windows (counting only in-bounds taps).
type AvgPool2D struct {
	LayerName string
	Kernel    int
	Stride    int
	Pad       Padding

	lastShape []int
}

// NewAvgPool2D constructs an average-pooling layer.
func NewAvgPool2D(name string, kernel, stride int, pad Padding) *AvgPool2D {
	if kernel <= 0 || stride <= 0 {
		panic(fmt.Sprintf("nn: bad AvgPool2D params kernel=%d stride=%d", kernel, stride))
	}
	return &AvgPool2D{LayerName: name, Kernel: kernel, Stride: stride, Pad: pad}
}

// Name implements Layer.
func (a *AvgPool2D) Name() string { return a.LayerName }

// Params implements Layer.
func (a *AvgPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (a *AvgPool2D) OutShape(in []int) []int {
	n, h, w, c := checkRank4(a.LayerName, in)
	oh, _ := outDim(h, a.Kernel, a.Stride, a.Pad)
	ow, _ := outDim(w, a.Kernel, a.Stride, a.Pad)
	return []int{n, oh, ow, c}
}

// MAdds implements Layer.
func (a *AvgPool2D) MAdds(in []int) int64 { return 0 }

func (a *AvgPool2D) windows(x []int) (n, h, w, c, oh, ow, padY, padX int) {
	n, h, w, c = checkRank4(a.LayerName, x)
	oh, padY = outDim(h, a.Kernel, a.Stride, a.Pad)
	ow, padX = outDim(w, a.Kernel, a.Stride, a.Pad)
	return
}

// Forward implements Layer.
func (a *AvgPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	n, h, w, c, oh, ow, padY, padX := a.windows(x.Shape)
	out := tensor.New(n, oh, ow, c)
	k, s := a.Kernel, a.Stride
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := ((b*oh+oy)*ow + ox) * c
				count := 0
				for ky := 0; ky < k; ky++ {
					iy := oy*s - padY + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s - padX + kx
						if ix < 0 || ix >= w {
							continue
						}
						count++
						src := ((b*h+iy)*w + ix) * c
						for ci := 0; ci < c; ci++ {
							out.Data[dst+ci] += x.Data[src+ci]
						}
					}
				}
				if count > 0 {
					inv := 1 / float32(count)
					for ci := 0; ci < c; ci++ {
						out.Data[dst+ci] *= inv
					}
				}
			}
		}
	}
	if training {
		a.lastShape = append([]int(nil), x.Shape...)
	}
	return out
}

// Backward implements Layer.
func (a *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.lastShape == nil {
		panic(fmt.Sprintf("nn: %s Backward without training Forward", a.LayerName))
	}
	n, h, w, c, oh, ow, padY, padX := a.windows(a.lastShape)
	gin := tensor.New(a.lastShape...)
	k, s := a.Kernel, a.Stride
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				gsrc := ((b*oh+oy)*ow + ox) * c
				count := 0
				for ky := 0; ky < k; ky++ {
					iy := oy*s - padY + ky
					if iy >= 0 && iy < h {
						for kx := 0; kx < k; kx++ {
							ix := ox*s - padX + kx
							if ix >= 0 && ix < w {
								count++
							}
						}
					}
				}
				if count == 0 {
					continue
				}
				inv := 1 / float32(count)
				for ky := 0; ky < k; ky++ {
					iy := oy*s - padY + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < k; kx++ {
						ix := ox*s - padX + kx
						if ix < 0 || ix >= w {
							continue
						}
						dst := ((b*h+iy)*w + ix) * c
						for ci := 0; ci < c; ci++ {
							gin.Data[dst+ci] += grad.Data[gsrc+ci] * inv
						}
					}
				}
			}
		}
	}
	a.lastShape = nil
	return gin
}

// GlobalAvgPool reduces [N,H,W,C] to [N,C] by spatial averaging —
// MobileNet's final pooling stage, and the tap the drone-SVM baseline
// (Wang et al. 2018) reads.
type GlobalAvgPool struct {
	LayerName string
	lastShape []int
}

// NewGlobalAvgPool constructs a global average pool.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{LayerName: name} }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.LayerName }

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// OutShape implements Layer.
func (g *GlobalAvgPool) OutShape(in []int) []int {
	n, _, _, c := checkRank4(g.LayerName, in)
	return []int{n, c}
}

// MAdds implements Layer.
func (g *GlobalAvgPool) MAdds(in []int) int64 { return 0 }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	n, h, w, c := checkRank4(g.LayerName, x.Shape)
	out := tensor.New(n, c)
	inv := 1 / float32(h*w)
	for b := 0; b < n; b++ {
		acc := out.Data[b*c : (b+1)*c]
		for p := 0; p < h*w; p++ {
			src := (b*h*w + p) * c
			for ci := 0; ci < c; ci++ {
				acc[ci] += x.Data[src+ci]
			}
		}
		for ci := range acc {
			acc[ci] *= inv
		}
	}
	if training {
		g.lastShape = append([]int(nil), x.Shape...)
	}
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if g.lastShape == nil {
		panic(fmt.Sprintf("nn: %s Backward without training Forward", g.LayerName))
	}
	n, h, w, c := g.lastShape[0], g.lastShape[1], g.lastShape[2], g.lastShape[3]
	gin := tensor.New(g.lastShape...)
	inv := 1 / float32(h*w)
	for b := 0; b < n; b++ {
		gr := grad.Data[b*c : (b+1)*c]
		for p := 0; p < h*w; p++ {
			dst := (b*h*w + p) * c
			for ci := 0; ci < c; ci++ {
				gin.Data[dst+ci] = gr[ci] * inv
			}
		}
	}
	g.lastShape = nil
	return gin
}

// GlobalMax reduces [N,H,W,C] to [N,C] by taking the maximum over the
// spatial grid. With C=1 this is the "max over the grid of logits"
// aggregation of the full-frame object detector microclassifier
// (§3.3.1): the frame is positive if any location fires.
type GlobalMax struct {
	LayerName string
	lastArg   []int32
	lastShape []int
}

// NewGlobalMax constructs a global spatial max layer.
func NewGlobalMax(name string) *GlobalMax { return &GlobalMax{LayerName: name} }

// Name implements Layer.
func (g *GlobalMax) Name() string { return g.LayerName }

// Params implements Layer.
func (g *GlobalMax) Params() []*Param { return nil }

// OutShape implements Layer.
func (g *GlobalMax) OutShape(in []int) []int {
	n, _, _, c := checkRank4(g.LayerName, in)
	return []int{n, c}
}

// MAdds implements Layer.
func (g *GlobalMax) MAdds(in []int) int64 { return 0 }

// Forward implements Layer.
func (g *GlobalMax) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	n, h, w, c := checkRank4(g.LayerName, x.Shape)
	out := tensor.New(n, c)
	var arg []int32
	if training {
		arg = make([]int32, n*c)
	}
	for b := 0; b < n; b++ {
		for ci := 0; ci < c; ci++ {
			best := x.Data[(b*h*w)*c+ci]
			bestOff := int32((b*h*w)*c + ci)
			for p := 1; p < h*w; p++ {
				off := (b*h*w+p)*c + ci
				if x.Data[off] > best {
					best, bestOff = x.Data[off], int32(off)
				}
			}
			out.Data[b*c+ci] = best
			if training {
				arg[b*c+ci] = bestOff
			}
		}
	}
	if training {
		g.lastArg = arg
		g.lastShape = append([]int(nil), x.Shape...)
	}
	return out
}

// Backward implements Layer.
func (g *GlobalMax) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if g.lastArg == nil {
		panic(fmt.Sprintf("nn: %s Backward without training Forward", g.LayerName))
	}
	gin := tensor.New(g.lastShape...)
	for i, off := range g.lastArg {
		gin.Data[off] += grad.Data[i]
	}
	g.lastArg, g.lastShape = nil, nil
	return gin
}
