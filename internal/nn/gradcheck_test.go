package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// lossOf runs a forward pass in training mode and returns a scalar
// loss: the weighted sum of outputs against fixed coefficients, which
// gives a well-defined gradient of ones*coeff at the output.
func lossOf(l Layer, x *tensor.Tensor, coeff []float32) float64 {
	out := l.Forward(x, true)
	var s float64
	for i, v := range out.Data {
		s += float64(v) * float64(coeff[i%len(coeff)])
	}
	return s
}

// checkLayerGradients verifies the analytic input and parameter
// gradients of l against central finite differences.
func checkLayerGradients(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	coeff := []float32{0.7, -1.3, 0.4, 1.1, -0.5}

	// Analytic gradients.
	out := l.Forward(x.Clone(), true)
	grad := tensor.New(out.Shape...)
	for i := range grad.Data {
		grad.Data[i] = coeff[i%len(coeff)]
	}
	gin := l.Backward(grad)

	// Snapshot analytic parameter gradients before the probing passes
	// below clobber them.
	params := l.Params()
	analytic := make([][]float32, len(params))
	for i, p := range params {
		analytic[i] = append([]float32(nil), p.Grad.Data...)
		p.Grad.Zero()
	}

	// Numeric input gradient.
	const eps = 1e-2
	for i := 0; i < x.Len(); i++ {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := lossOf(l, x.Clone(), coeff)
		// Drain the backward cache so the next Forward can overwrite it.
		drain(l, out.Shape)
		x.Data[i] = orig - eps
		down := lossOf(l, x.Clone(), coeff)
		drain(l, out.Shape)
		x.Data[i] = orig
		num := (up - down) / (2 * eps)
		if diff := math.Abs(num - float64(gin.Data[i])); diff > tol*(1+math.Abs(num)) {
			t.Fatalf("input grad[%d]: analytic %v, numeric %v", i, gin.Data[i], num)
		}
	}

	// Numeric parameter gradients.
	for pi, p := range params {
		for i := 0; i < p.Value.Len(); i++ {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + eps
			up := lossOf(l, x.Clone(), coeff)
			drain(l, out.Shape)
			p.Value.Data[i] = orig - eps
			down := lossOf(l, x.Clone(), coeff)
			drain(l, out.Shape)
			p.Value.Data[i] = orig
			num := (up - down) / (2 * eps)
			if diff := math.Abs(num - float64(analytic[pi][i])); diff > tol*(1+math.Abs(num)) {
				t.Fatalf("param %s grad[%d]: analytic %v, numeric %v", p.Name, i, analytic[pi][i], num)
			}
		}
	}
}

// drain calls Backward with zero grad to clear layer caches set by the
// probing Forward calls.
func drain(l Layer, outShape []int) {
	l.Backward(tensor.New(outShape...))
	for _, p := range l.Params() {
		p.Grad.Zero()
	}
}

func randInput(shape ...int) *tensor.Tensor {
	g := tensor.NewRNG(11)
	x := tensor.New(shape...)
	g.FillNormal(x, 0, 1)
	return x
}

func TestGradConv2DValid(t *testing.T) {
	g := tensor.NewRNG(1)
	l := NewConv2D("c", 2, 3, 3, 1, Valid, g)
	checkLayerGradients(t, l, randInput(2, 4, 5, 2), 2e-2)
}

func TestGradConv2DSameStride2(t *testing.T) {
	g := tensor.NewRNG(2)
	l := NewConv2D("c", 3, 2, 3, 2, Same, g)
	checkLayerGradients(t, l, randInput(1, 5, 5, 3), 2e-2)
}

func TestGradConv2D1x1(t *testing.T) {
	g := tensor.NewRNG(3)
	l := NewConv2D("c", 4, 3, 1, 1, Same, g)
	checkLayerGradients(t, l, randInput(2, 3, 3, 4), 2e-2)
}

func TestGradDepthwiseSame(t *testing.T) {
	g := tensor.NewRNG(4)
	l := NewDepthwiseConv2D("d", 3, 3, 1, Same, g)
	checkLayerGradients(t, l, randInput(1, 4, 4, 3), 2e-2)
}

func TestGradDepthwiseStride2(t *testing.T) {
	g := tensor.NewRNG(5)
	l := NewDepthwiseConv2D("d", 2, 3, 2, Same, g)
	checkLayerGradients(t, l, randInput(2, 5, 5, 2), 2e-2)
}

func TestGradDense(t *testing.T) {
	g := tensor.NewRNG(6)
	l := NewDense("fc", 7, 4, g)
	checkLayerGradients(t, l, randInput(3, 7), 2e-2)
}

func TestGradReLU(t *testing.T) {
	l := NewReLU("r")
	// Keep inputs away from the kink at 0 so finite differences are valid.
	x := randInput(2, 3, 3, 2)
	for i := range x.Data {
		if math.Abs(float64(x.Data[i])) < 0.05 {
			x.Data[i] = 0.5
		}
	}
	checkLayerGradients(t, l, x, 2e-2)
}

func TestGradReLU6(t *testing.T) {
	l := NewReLU6("r6")
	x := randInput(2, 8)
	for i := range x.Data {
		x.Data[i] *= 3
		if math.Abs(float64(x.Data[i])) < 0.05 || math.Abs(float64(x.Data[i])-6) < 0.05 {
			x.Data[i] = 1
		}
	}
	checkLayerGradients(t, l, x, 2e-2)
}

func TestGradSigmoid(t *testing.T) {
	l := NewSigmoid("s")
	checkLayerGradients(t, l, randInput(2, 5), 2e-2)
}

func TestGradMaxPool(t *testing.T) {
	l := NewMaxPool2D("mp", 2, 2, Valid)
	// Perturbations must not flip the argmax; spread values apart.
	x := tensor.New(1, 4, 4, 2)
	g := tensor.NewRNG(8)
	for i := range x.Data {
		x.Data[i] = float32(i%13) + 0.3*g.Float32()
	}
	checkLayerGradients(t, l, x, 2e-2)
}

func TestGradAvgPool(t *testing.T) {
	l := NewAvgPool2D("ap", 2, 2, Same)
	checkLayerGradients(t, l, randInput(1, 5, 5, 2), 2e-2)
}

func TestGradGlobalAvgPool(t *testing.T) {
	l := NewGlobalAvgPool("gap")
	checkLayerGradients(t, l, randInput(2, 3, 4, 3), 2e-2)
}

func TestGradGlobalMax(t *testing.T) {
	l := NewGlobalMax("gm")
	x := tensor.New(1, 3, 3, 2)
	for i := range x.Data {
		x.Data[i] = float32(i) * 0.37
	}
	checkLayerGradients(t, l, x, 2e-2)
}

func TestGradFlatten(t *testing.T) {
	l := NewFlatten("fl")
	checkLayerGradients(t, l, randInput(2, 2, 3, 2), 2e-2)
}

func TestGradBatchNorm(t *testing.T) {
	l := NewBatchNorm("bn", 2)
	checkLayerGradients(t, l, randInput(2, 3, 3, 2), 5e-2)
}

// TestGradNetworkComposite checks gradients through a realistic stack:
// sepconv -> relu -> maxpool -> flatten -> dense -> sigmoid, the shape
// of a localized binary classifier.
func TestGradNetworkComposite(t *testing.T) {
	g := tensor.NewRNG(9)
	dw, pw := SeparableConv2D("s1", 2, 3, 3, 1, Same, g)
	net := NewNetwork("composite").
		Add(dw).Add(pw).
		Add(NewReLU("r1")).
		Add(NewMaxPool2D("mp", 2, 2, Valid)).
		Add(NewFlatten("fl")).
		Add(NewDense("fc", 2*2*3, 1, g)).
		Add(NewSigmoid("out"))

	x := randInput(1, 4, 4, 2)
	out := net.Forward(x.Clone(), true)
	grad := tensor.New(out.Shape...)
	grad.Fill(1)
	gin := net.Backward(grad)

	const eps = 1e-2
	for i := 0; i < x.Len(); i++ {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := net.Forward(x.Clone(), false).Sum()
		x.Data[i] = orig - eps
		down := net.Forward(x.Clone(), false).Sum()
		x.Data[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-float64(gin.Data[i])) > 3e-2*(1+math.Abs(num)) {
			t.Fatalf("network input grad[%d]: analytic %v numeric %v", i, gin.Data[i], num)
		}
	}
}
