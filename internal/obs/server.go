package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewDebugMux builds the debug endpoint mux for an observer:
//
//	/metrics           Prometheus text exposition of the registry
//	/debug/trace.json  Chrome trace_event dump of the span ring
//	/debug/pprof/*     the standard runtime profiles
func NewDebugMux(o *Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		o.Trace.WriteTraceJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP server.
type DebugServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug starts the debug HTTP server on addr (e.g. ":6060") and
// returns immediately; serving continues in the background until
// Close. It is the implementation behind the cmds' -debug-addr flag.
func ServeDebug(addr string, o *Observer) (*DebugServer, error) {
	return ServeMux(addr, NewDebugMux(o))
}

// ServeMux is ServeDebug over a caller-built mux — the hook for cmds
// that mount extra endpoints (e.g. a health engine's /healthz and
// /debug/health) next to the standard debug set from NewDebugMux.
func ServeMux(addr string, mux *http.ServeMux) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server listen %s: %w", addr, err)
	}
	s := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server and releases its listener.
func (s *DebugServer) Close() error { return s.srv.Close() }
