package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. All methods are
// lock-free and allocation-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value. All methods are lock-free
// and allocation-free.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of counters, gauges, and histograms.
// Get-or-create registration takes a lock; the returned instruments
// are lock-free, so hot paths hold them directly and never touch the
// registry per observation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sketches map[string]*ScoreSketch
	help     map[string]string
}

// NewRegistry constructs an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		sketches: make(map[string]*ScoreSketch),
		help:     make(map[string]string),
	}
}

// Describe registers HELP text for the named instrument.
// WritePrometheus emits it as a "# HELP" line ahead of the "# TYPE"
// line, which metric linters expect. Describing an instrument is
// optional and idempotent; the last text registered wins.
func (r *Registry) Describe(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// Counter returns the named counter, creating it on first use. Names
// should be valid Prometheus identifiers ([a-zA-Z_][a-zA-Z0-9_]*).
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// ShardGauge returns the gauge for one control-plane shard's metric,
// named "ff_fleet_shard_<shard>_<name>" — the per-shard load/latency
// surface a sharded fleet controller exports (node counts, ledger
// sizes, heartbeat-gap tails). Shards come and go with resizes;
// retired shards keep their last reading, which scrapes can drop by
// comparing against the live shard count gauge.
func (r *Registry) ShardGauge(shard int, name string) *Gauge {
	return r.Gauge(fmt.Sprintf("ff_fleet_shard_%d_%s", shard, name))
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Sketch returns the named score sketch, creating it on first use.
// Sketches render on /metrics as Prometheus histograms with bucket
// boundaries at the 32 bin edges over [0, 1].
func (r *Registry) Sketch(name string) *ScoreSketch {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sketches[name]
	if !ok {
		s = &ScoreSketch{}
		r.sketches[name] = s
	}
	return s
}

// Metric is one named value in a registry snapshot.
type Metric struct {
	// Name is the registered name; histogram entries carry a
	// "/p50"-style suffix per exported quantile.
	Name string
	// Value is the current reading (ns for histogram quantiles).
	Value float64
}

// Snapshot returns every registered metric as a sorted flat list —
// counters and gauges by value, histograms expanded into count, mean,
// and tail quantiles.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Metric
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Value: float64(g.Value())})
	}
	for name, h := range r.hists {
		s := h.Summary()
		out = append(out,
			Metric{Name: name + "/count", Value: float64(s.Count)},
			Metric{Name: name + "/mean", Value: s.Mean()},
			Metric{Name: name + "/p50", Value: float64(s.P50)},
			Metric{Name: name + "/p95", Value: float64(s.P95)},
			Metric{Name: name + "/p99", Value: float64(s.P99)},
			Metric{Name: name + "/max", Value: float64(s.Max)},
		)
	}
	for name, sk := range r.sketches {
		s := sk.Snapshot()
		out = append(out,
			Metric{Name: name + "/count", Value: float64(s.Count)},
			Metric{Name: name + "/mean", Value: s.Mean()},
			Metric{Name: name + "/pass_rate", Value: s.PassRate()},
		)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, latency histograms as summaries with quantile labels, and
// score sketches as histograms with bucket boundaries at the bin
// edges. Instruments with Describe'd help text get a "# HELP" line
// ahead of their "# TYPE" line. Output is sorted by name for
// deterministic scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	cnames := sortedKeys(r.counters)
	gnames := sortedKeys(r.gauges)
	hnames := sortedKeys(r.hists)
	knames := sortedKeys(r.sketches)
	counters := make(map[string]int64, len(cnames))
	gauges := make(map[string]int64, len(gnames))
	sums := make(map[string]Summary, len(hnames))
	sketches := make(map[string]SketchSnapshot, len(knames))
	help := make(map[string]string, len(r.help))
	for _, n := range cnames {
		counters[n] = r.counters[n].Value()
	}
	for _, n := range gnames {
		gauges[n] = r.gauges[n].Value()
	}
	for _, n := range hnames {
		sums[n] = r.hists[n].Summary()
	}
	for _, n := range knames {
		sketches[n] = r.sketches[n].Snapshot()
	}
	for n, h := range r.help {
		help[n] = h
	}
	r.mu.Unlock()

	writeHelp := func(n string) error {
		h, ok := help[n]
		if !ok {
			return nil
		}
		_, err := fmt.Fprintf(w, "# HELP %s %s\n", n, promEscapeHelp(h))
		return err
	}
	for _, n := range cnames {
		if err := writeHelp(n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, counters[n]); err != nil {
			return err
		}
	}
	for _, n := range gnames {
		if err := writeHelp(n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, gauges[n]); err != nil {
			return err
		}
	}
	for _, n := range hnames {
		if err := writeHelp(n); err != nil {
			return err
		}
		s := sums[n]
		_, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.95\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n",
			n, n, s.P50, n, s.P95, n, s.P99, n, s.Sum, n, s.Count)
		if err != nil {
			return err
		}
	}
	for _, n := range knames {
		if err := writeHelp(n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		s := sketches[n]
		var cum uint64
		for b := 0; b < SketchBins; b++ {
			cum += s.Bins[b]
			edge := float64(b+1) / SketchBins
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", n, edge, cum); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n%s_passes %d\n",
			n, s.Count, n, float64(s.Sum)/SketchUnit, n, s.Count, n, s.Passes)
		if err != nil {
			return err
		}
	}
	return nil
}

// promEscapeHelp escapes help text per the exposition format:
// backslashes and line feeds only.
func promEscapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
