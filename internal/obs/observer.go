package obs

import (
	"log/slog"
	"time"
)

// Options parameterizes an Observer.
type Options struct {
	// TraceCapacity is the span ring size (default
	// DefaultTraceCapacity).
	TraceCapacity int
	// SlowFrame arms the slow-frame trigger: frames whose envelope
	// exceeds it have their span chains logged. Zero disables.
	SlowFrame time.Duration
	// Log receives slow-frame chains and is the Observer's structured
	// logger (default slog.Default()).
	Log *slog.Logger
}

// Observer bundles one node's observability surface: the metric
// registry, the span tracer, the structured logger, and direct
// handles onto the pipeline's latency histograms so hot paths skip
// the registry lookup. A nil *Observer disables instrumentation
// everywhere it is threaded.
type Observer struct {
	Reg   *Registry
	Trace *Tracer
	Log   *slog.Logger

	// Frames counts processed frames across streams.
	Frames *Counter

	// Per-stage latency histograms, all in ns. Frame is the whole
	// ProcessFrame envelope; QueueWait is scheduler mailbox time;
	// ArchiveEncode is the ingest path's codec-model encode;
	// ArchiveAppend is the persistent store's disk write; Upload is
	// the wire send of one upload record; UploadRTT is send-to-ack.
	Frame, QueueWait, Decode, Extract, MCPush, Encode *Histogram
	ArchiveEncode, ArchiveAppend, Upload, UploadRTT   *Histogram
	Fetch                                             *Histogram
}

// NewObserver constructs an observer with its registry, tracer, and
// pipeline histograms wired up.
func NewObserver(opts Options) *Observer {
	log := opts.Log
	if log == nil {
		log = slog.Default()
	}
	o := &Observer{
		Reg:   NewRegistry(),
		Trace: NewTracer(opts.TraceCapacity),
		Log:   log,
	}
	o.Trace.SetSlowFrame(opts.SlowFrame, log)
	o.Frames = o.Reg.Counter("ff_frames_total")
	o.Frame = o.Reg.Histogram("ff_frame_ns")
	o.QueueWait = o.Reg.Histogram("ff_queue_wait_ns")
	o.Decode = o.Reg.Histogram("ff_decode_ns")
	o.Extract = o.Reg.Histogram("ff_extract_ns")
	o.MCPush = o.Reg.Histogram("ff_mc_push_ns")
	o.Encode = o.Reg.Histogram("ff_encode_ns")
	o.ArchiveEncode = o.Reg.Histogram("ff_archive_encode_ns")
	o.ArchiveAppend = o.Reg.Histogram("ff_archive_append_ns")
	o.Upload = o.Reg.Histogram("ff_upload_send_ns")
	o.UploadRTT = o.Reg.Histogram("ff_upload_rtt_ns")
	o.Fetch = o.Reg.Histogram("ff_fetch_ns")
	return o
}
