package obs

import (
	"log/slog"
	"time"
)

// Options parameterizes an Observer.
type Options struct {
	// TraceCapacity is the span ring size (default
	// DefaultTraceCapacity).
	TraceCapacity int
	// SlowFrame arms the slow-frame trigger: frames whose envelope
	// exceeds it have their span chains logged. Zero disables.
	SlowFrame time.Duration
	// Log receives slow-frame chains and is the Observer's structured
	// logger (default slog.Default()).
	Log *slog.Logger
}

// Observer bundles one node's observability surface: the metric
// registry, the span tracer, the structured logger, and direct
// handles onto the pipeline's latency histograms so hot paths skip
// the registry lookup. A nil *Observer disables instrumentation
// everywhere it is threaded.
type Observer struct {
	Reg   *Registry
	Trace *Tracer
	Log   *slog.Logger

	// Frames counts processed frames across streams.
	Frames *Counter

	// Per-stage latency histograms, all in ns. Frame is the whole
	// ProcessFrame envelope; QueueWait is scheduler mailbox time;
	// ArchiveEncode is the ingest path's codec-model encode;
	// ArchiveAppend is the persistent store's disk write; Upload is
	// the wire send of one upload record; UploadRTT is send-to-ack.
	Frame, QueueWait, Decode, Extract, MCPush, Encode *Histogram
	ArchiveEncode, ArchiveAppend, Upload, UploadRTT   *Histogram
	Fetch                                             *Histogram

	// Scores is the node-level aggregate of every deployed MC's score
	// sketch — the semantic twin of the latency histograms. It shows
	// up on /metrics as the ff_mc_scores histogram; per-MC sketches
	// additionally ride heartbeats to the fleet controller.
	Scores *ScoreSketch
}

// NewObserver constructs an observer with its registry, tracer, and
// pipeline histograms wired up.
func NewObserver(opts Options) *Observer {
	log := opts.Log
	if log == nil {
		log = slog.Default()
	}
	o := &Observer{
		Reg:   NewRegistry(),
		Trace: NewTracer(opts.TraceCapacity),
		Log:   log,
	}
	o.Trace.SetSlowFrame(opts.SlowFrame, log)
	instrument := func(name, help string) {
		o.Reg.Describe(name, help)
	}
	instrument("ff_frames_total", "Frames processed across all streams.")
	o.Frames = o.Reg.Counter("ff_frames_total")
	instrument("ff_frame_ns", "Whole ProcessFrame envelope latency in nanoseconds.")
	o.Frame = o.Reg.Histogram("ff_frame_ns")
	instrument("ff_queue_wait_ns", "Scheduler mailbox wait before a frame is served, in nanoseconds.")
	o.QueueWait = o.Reg.Histogram("ff_queue_wait_ns")
	instrument("ff_decode_ns", "Frame decode latency in nanoseconds.")
	o.Decode = o.Reg.Histogram("ff_decode_ns")
	instrument("ff_extract_ns", "Base-DNN feature extraction latency in nanoseconds.")
	o.Extract = o.Reg.Histogram("ff_extract_ns")
	instrument("ff_mc_push_ns", "Microclassifier push latency in nanoseconds.")
	o.MCPush = o.Reg.Histogram("ff_mc_push_ns")
	instrument("ff_encode_ns", "Event-segment encode latency in nanoseconds.")
	o.Encode = o.Reg.Histogram("ff_encode_ns")
	instrument("ff_archive_encode_ns", "Continuous-archive codec-model encode latency in nanoseconds.")
	o.ArchiveEncode = o.Reg.Histogram("ff_archive_encode_ns")
	instrument("ff_archive_append_ns", "Continuous-archive disk append latency in nanoseconds.")
	o.ArchiveAppend = o.Reg.Histogram("ff_archive_append_ns")
	instrument("ff_upload_send_ns", "Wire send latency of one upload record in nanoseconds.")
	o.Upload = o.Reg.Histogram("ff_upload_send_ns")
	instrument("ff_upload_rtt_ns", "Upload send-to-ack round trip in nanoseconds.")
	o.UploadRTT = o.Reg.Histogram("ff_upload_rtt_ns")
	instrument("ff_fetch_ns", "Demand-fetch service latency in nanoseconds.")
	o.Fetch = o.Reg.Histogram("ff_fetch_ns")
	instrument("ff_mc_scores", "Microclassifier score distribution across all deployed MCs on this node.")
	o.Scores = o.Reg.Sketch("ff_mc_scores")
	return o
}
