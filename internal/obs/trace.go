package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// Stage identifies which pipeline phase a span covers.
type Stage uint8

// Pipeline stages, in rough frame order. StageFrame is the whole
// ProcessFrame envelope; the rest are its phases plus the async paths
// (archive disk append, fleet upload send, demand fetch).
const (
	StageFrame Stage = iota
	StageQueueWait
	StageDecode
	StageArchiveEncode
	StageExtract
	StageMCPush
	StageEncode
	StageArchiveAppend
	StageUpload
	StageFetch
	numStages
)

var stageNames = [numStages]string{
	"frame", "queue_wait", "decode", "archive_encode", "extract",
	"mc_push", "encode", "archive_append", "upload", "fetch",
}

// String returns the stage's snake_case name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one fixed-size pipeline trace record. No pointers, no
// strings: recording a span never allocates, and the ring's memory is
// bounded at construction.
type Span struct {
	// Stage is the pipeline phase.
	Stage Stage
	// Stream is the interned stream ID (see Tracer.StreamID).
	Stream uint32
	// Frame is the stream frame index the span applies to.
	Frame int64
	// Start is ns since the tracer's epoch.
	Start int64
	// Dur is the span length in ns.
	Dur int64
}

// Tracer records pipeline spans into a fixed-size ring buffer. Record
// is mutex-guarded (a single uncontended lock, no allocation) and safe
// for concurrent writers; Snapshot and WriteTraceJSON may run while
// recording continues. An optional slow-frame trigger logs the full
// span chain of any frame whose envelope exceeds a threshold.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	buf     []Span
	next    uint64 // spans recorded since construction
	streams []string
	ids     map[string]uint32

	slowNs  int64
	slowLog *slog.Logger
}

// DefaultTraceCapacity is the ring size NewTracer uses for
// capacity <= 0 — enough for a few hundred frames of a full pipeline.
const DefaultTraceCapacity = 4096

// NewTracer constructs a tracer with a fixed ring capacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		epoch: time.Now(),
		buf:   make([]Span, capacity),
		ids:   make(map[string]uint32),
	}
}

// SetSlowFrame arms the slow-frame trigger: any StageFrame span with
// duration at or above threshold has its full span chain logged to
// log. A zero threshold (or nil logger) disables the trigger. Not
// concurrency-safe with recording; configure before the pipeline runs.
func (t *Tracer) SetSlowFrame(threshold time.Duration, log *slog.Logger) {
	t.slowNs = int64(threshold)
	t.slowLog = log
}

// StreamID interns a stream name and returns its compact ID. Intern
// at setup time; Record then carries the uint32, keeping the hot path
// free of strings.
func (t *Tracer) StreamID(name string) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := uint32(len(t.streams))
	t.streams = append(t.streams, name)
	t.ids[name] = id
	return id
}

// StreamName resolves an interned stream ID, "" when unknown.
func (t *Tracer) StreamName(id uint32) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) < len(t.streams) {
		return t.streams[id]
	}
	return ""
}

// Record appends one span to the ring, overwriting the oldest when
// full. Allocation-free.
func (t *Tracer) Record(stage Stage, stream uint32, frame int64, start time.Time, dur time.Duration) {
	t.mu.Lock()
	t.buf[t.next%uint64(len(t.buf))] = Span{
		Stage:  stage,
		Stream: stream,
		Frame:  frame,
		Start:  start.Sub(t.epoch).Nanoseconds(),
		Dur:    int64(dur),
	}
	t.next++
	t.mu.Unlock()
}

// RecordFrame records a frame's StageFrame envelope span and fires
// the slow-frame trigger when armed. The trigger path allocates (it
// collects and logs the chain); the normal path does not.
func (t *Tracer) RecordFrame(stream uint32, frame int64, start time.Time, dur time.Duration) {
	t.Record(StageFrame, stream, frame, start, dur)
	if t.slowNs > 0 && int64(dur) >= t.slowNs && t.slowLog != nil {
		t.logSlow(stream, frame, dur)
	}
}

// Recorded returns the total spans recorded since construction
// (including any that have been overwritten).
func (t *Tracer) Recorded() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Snapshot copies the ring's live spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

func (t *Tracer) snapshotLocked() []Span {
	capa := uint64(len(t.buf))
	n := t.next
	if n > capa {
		n = capa
	}
	out := make([]Span, 0, n)
	start := t.next - n
	for i := uint64(0); i < n; i++ {
		out = append(out, t.buf[(start+i)%capa])
	}
	return out
}

// logSlow logs the span chain of one slow frame.
func (t *Tracer) logSlow(stream uint32, frame int64, dur time.Duration) {
	t.mu.Lock()
	var chain []Span
	for _, sp := range t.snapshotLocked() {
		if sp.Stream == stream && sp.Frame == frame && sp.Stage != StageFrame {
			chain = append(chain, sp)
		}
	}
	t.mu.Unlock()
	sort.Slice(chain, func(i, j int) bool { return chain[i].Start < chain[j].Start })
	attrs := make([]any, 0, 6+2*len(chain))
	attrs = append(attrs, "stream", t.StreamName(stream), "frame", frame, "dur", dur)
	for _, sp := range chain {
		attrs = append(attrs, sp.Stage.String(), time.Duration(sp.Dur))
	}
	t.slowLog.Warn("slow frame", attrs...)
}

// traceEvent is one Chrome trace_event record (the Perfetto/about:
// tracing JSON schema). Complete ("X") events carry microsecond
// timestamps and durations.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  uint32         `json:"tid"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTraceJSON dumps the ring as Chrome trace_event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Each stream is a
// named thread; spans are complete events with the frame index in
// args. Safe to call while recording continues.
func (t *Tracer) WriteTraceJSON(w io.Writer) error {
	spans := t.Snapshot()
	t.mu.Lock()
	streams := append([]string(nil), t.streams...)
	t.mu.Unlock()

	events := make([]traceEvent, 0, len(spans)+len(streams)+1)
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "filterforward"},
	})
	for id, name := range streams {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: uint32(id),
			Args: map[string]any{"name": "stream:" + name},
		})
	}
	for _, sp := range spans {
		events = append(events, traceEvent{
			Name: sp.Stage.String(), Ph: "X", Pid: 1, Tid: sp.Stream,
			Ts:  float64(sp.Start) / 1e3,
			Dur: float64(sp.Dur) / 1e3,
			Args: map[string]any{
				"frame": sp.Frame,
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
