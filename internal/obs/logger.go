package obs

import (
	"io"
	"log/slog"
)

// NewLogger builds the structured logger the cmds share: text by
// default, JSON lines with -log-json. Level filters at source.
func NewLogger(w io.Writer, jsonFormat bool, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
