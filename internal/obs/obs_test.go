package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramUnderflowOverflow(t *testing.T) {
	var h Histogram
	h.ObserveNs(0)
	h.ObserveNs(-37)
	h.ObserveNs(1)
	s := h.Snapshot()
	if s.Buckets[0] != 3 {
		t.Fatalf("underflow bucket = %d, want 3", s.Buckets[0])
	}

	huge := int64(1) << (NumBuckets + 5) // far beyond the top bucket's lower bound
	h.ObserveNs(huge)
	h.ObserveNs(huge * 2)
	s = h.Snapshot()
	if s.Buckets[NumBuckets-1] != 2 {
		t.Fatalf("overflow bucket = %d, want 2", s.Buckets[NumBuckets-1])
	}
	if s.Max != huge*2 {
		t.Fatalf("max = %d, want %d", s.Max, huge*2)
	}
	// The overflow bucket's quantiles are capped at the observed max:
	// never a value beyond anything actually seen.
	if q := s.Quantile(1.0); q > huge*2 {
		t.Fatalf("p100 = %d beyond max %d", q, huge*2)
	}
	if q := h.Quantile(0.99); q > huge*2 || q < huge {
		t.Fatalf("p99 = %d outside overflow range [%d, %d]", q, huge, huge*2)
	}
}

func TestHistogramQuantileSparse(t *testing.T) {
	// Two sparse buckets: 90 samples at ~1µs, 10 at ~1ms. p50 must
	// interpolate inside the low bucket, p95+ inside the high one.
	var h Histogram
	for i := 0; i < 90; i++ {
		h.ObserveNs(1024) // bucket 10: [1024, 2048)
	}
	for i := 0; i < 10; i++ {
		h.ObserveNs(1 << 20) // bucket 20: [1048576, 2097152)
	}
	p50 := h.Quantile(0.50)
	if p50 < 1024 || p50 >= 2048 {
		t.Fatalf("p50 = %d, want within [1024, 2048)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 1<<20 || p99 > h.Snapshot().Max {
		t.Fatalf("p99 = %d, want within [%d, max]", p99, 1<<20)
	}
	// Interpolation is monotone in q.
	if h.Quantile(0.95) > p99 {
		t.Fatalf("p95 %d > p99 %d", h.Quantile(0.95), p99)
	}
	// All mass in one bucket: quantiles stay inside it, and are capped
	// by the real max.
	var one Histogram
	one.ObserveNs(5000)
	one.ObserveNs(5000)
	if q := one.Quantile(0.99); q < 4096 || q > 5000 {
		t.Fatalf("single-bucket p99 = %d, want within [4096, 5000]", q)
	}
	var empty Histogram
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", q)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.ObserveNs(rng.Int63n(1 << 30))
				if i%512 == 0 {
					// Read while others write: snapshots must be safe.
					_ = h.Summary()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != writers*per {
		t.Fatalf("count = %d, want %d", s.Count, writers*per)
	}
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total != writers*per {
		t.Fatalf("bucket total = %d, want %d", total, writers*per)
	}
}

func TestSummaryMergeWorstCase(t *testing.T) {
	a := Summary{Count: 10, Sum: 100, P50: 5, P95: 50, P99: 70, Max: 80}
	b := Summary{Count: 4, Sum: 400, P50: 9, P95: 20, P99: 90, Max: 95}
	a.Merge(b)
	want := Summary{Count: 14, Sum: 500, P50: 9, P95: 50, P99: 90, Max: 95}
	if a != want {
		t.Fatalf("merge = %+v, want %+v", a, want)
	}
}

func TestRegistrySnapshotAndPrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ff_frames_total")
	c.Add(41)
	c.Inc()
	if again := r.Counter("ff_frames_total"); again != c {
		t.Fatal("Counter is not get-or-create")
	}
	r.Gauge("ff_queue_depth").Set(7)
	h := r.Histogram("ff_extract_ns")
	h.ObserveNs(1000)
	h.ObserveNs(3000)

	snap := r.Snapshot()
	byName := map[string]float64{}
	for _, m := range snap {
		byName[m.Name] = m.Value
	}
	if byName["ff_frames_total"] != 42 {
		t.Fatalf("counter snapshot = %v", byName["ff_frames_total"])
	}
	if byName["ff_extract_ns/count"] != 2 {
		t.Fatalf("histogram count snapshot = %v", byName["ff_extract_ns/count"])
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name > snap[i].Name {
			t.Fatalf("snapshot not sorted: %q > %q", snap[i-1].Name, snap[i].Name)
		}
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE ff_frames_total counter\nff_frames_total 42\n",
		"# TYPE ff_queue_depth gauge\nff_queue_depth 7\n",
		"# TYPE ff_extract_ns summary\n",
		"ff_extract_ns{quantile=\"0.95\"}",
		"ff_extract_ns_count 2",
		"ff_extract_ns_sum 4000",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(8)
	sid := tr.StreamID("cam0")
	epoch := time.Now()
	for i := 0; i < 20; i++ {
		tr.Record(StageExtract, sid, int64(i), epoch.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	if got := tr.Recorded(); got != 20 {
		t.Fatalf("recorded = %d, want 20", got)
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("snapshot len = %d, want ring capacity 8", len(spans))
	}
	for i, sp := range spans {
		if want := int64(12 + i); sp.Frame != want {
			t.Fatalf("span %d frame = %d, want %d (oldest-first last 8)", i, sp.Frame, want)
		}
	}
}

func TestTracerConcurrentDumpWhileRecording(t *testing.T) {
	tr := NewTracer(64)
	sid := tr.StreamID("cam0")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		epoch := time.Now()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr.Record(Stage(i%int(numStages)), sid, int64(i), epoch, time.Microsecond)
		}
	}()
	for i := 0; i < 50; i++ {
		_ = tr.Snapshot()
		var buf bytes.Buffer
		if err := tr.WriteTraceJSON(&buf); err != nil {
			t.Errorf("dump %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestTraceJSONFormat(t *testing.T) {
	tr := NewTracer(16)
	sid := tr.StreamID("cam0")
	tr.Record(StageExtract, sid, 3, tr.epoch.Add(10*time.Microsecond), 5*time.Microsecond)
	var buf bytes.Buffer
	if err := tr.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	var sawThread, sawSpan bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "stream:cam0" {
			sawThread = true
		}
		if ev.Ph == "X" && ev.Name == "extract" {
			sawSpan = true
			if ev.Ts != 10 || ev.Dur != 5 {
				t.Fatalf("span ts/dur = %v/%v µs, want 10/5", ev.Ts, ev.Dur)
			}
			if ev.Args["frame"] != float64(3) {
				t.Fatalf("span frame = %v, want 3", ev.Args["frame"])
			}
		}
	}
	if !sawThread || !sawSpan {
		t.Fatalf("trace missing thread metadata (%v) or span (%v)", sawThread, sawSpan)
	}
}

func TestSlowFrameTrigger(t *testing.T) {
	var buf bytes.Buffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(32)
	tr.SetSlowFrame(10*time.Millisecond, log)
	sid := tr.StreamID("cam0")
	epoch := time.Now()
	tr.Record(StageDecode, sid, 7, epoch, time.Millisecond)
	tr.Record(StageExtract, sid, 7, epoch.Add(time.Millisecond), 14*time.Millisecond)
	tr.RecordFrame(sid, 6, epoch, 2*time.Millisecond) // fast: no log
	if buf.Len() != 0 {
		t.Fatalf("fast frame logged: %s", buf.String())
	}
	tr.RecordFrame(sid, 7, epoch, 15*time.Millisecond)
	out := buf.String()
	for _, want := range []string{"slow frame", "stream=cam0", "frame=7", "decode=", "extract="} {
		if !strings.Contains(out, want) {
			t.Fatalf("slow-frame log missing %q:\n%s", want, out)
		}
	}
}

func TestDebugServer(t *testing.T) {
	o := NewObserver(Options{TraceCapacity: 16, Log: slog.New(slog.NewTextHandler(io.Discard, nil))})
	o.Frames.Inc()
	o.Extract.Observe(time.Millisecond)
	o.Trace.Record(StageExtract, o.Trace.StreamID("cam0"), 0, time.Now(), time.Millisecond)

	srv, err := ServeDebug("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "ff_frames_total 1") ||
		!strings.Contains(body, "ff_extract_ns_count 1") {
		t.Fatalf("/metrics missing expected series:\n%s", body)
	}
	if body := get("/debug/trace.json"); !strings.Contains(body, `"extract"`) {
		t.Fatalf("/debug/trace.json missing span:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestObserveAllocFree(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() { h.ObserveNs(12345) }); allocs != 0 {
		t.Fatalf("Histogram.ObserveNs allocates %v/op, want 0", allocs)
	}
	tr := NewTracer(128)
	sid := tr.StreamID("cam0")
	start := time.Now()
	if allocs := testing.AllocsPerRun(1000, func() {
		tr.Record(StageExtract, sid, 1, start, time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("Tracer.Record allocates %v/op, want 0", allocs)
	}
	var c Counter
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Fatalf("Counter.Inc allocates %v/op, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNs(int64(i)&0xfffff + 1)
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(4096)
	sid := tr.StreamID("cam0")
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(StageMCPush, sid, int64(i), start, time.Microsecond)
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("ff_frames_total").Add(3)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	fmt.Print(buf.String())
	// Output:
	// # TYPE ff_frames_total counter
	// ff_frames_total 3
}
