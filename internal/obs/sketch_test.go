package obs

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func sketchOf(scores []float64, threshold float64) SketchSnapshot {
	var s ScoreSketch
	for _, v := range scores {
		s.Observe(v, v >= threshold)
	}
	return s.Snapshot()
}

func TestSketchObserveAndMoments(t *testing.T) {
	snap := sketchOf([]float64{0.0, 0.25, 0.5, 0.75, 1.0}, 0.5)
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if snap.Passes != 3 {
		t.Fatalf("passes = %d, want 3 (0.5, 0.75, 1.0)", snap.Passes)
	}
	if got := snap.PassRate(); math.Abs(got-0.6) > 1e-9 {
		t.Fatalf("pass rate = %v, want 0.6", got)
	}
	if got := snap.Mean(); math.Abs(got-0.5) > 1e-5 {
		t.Fatalf("mean = %v, want 0.5", got)
	}
	// Population variance of {0, .25, .5, .75, 1} is 0.125.
	if got := snap.Variance(); math.Abs(got-0.125) > 1e-4 {
		t.Fatalf("variance = %v, want 0.125", got)
	}
	// 1.0 lands in the top (closed) bin, not out of range.
	if snap.Bins[SketchBins-1] != 1 {
		t.Fatalf("top bin = %d, want 1", snap.Bins[SketchBins-1])
	}
	if snap.Bins[0] != 1 {
		t.Fatalf("bottom bin = %d, want 1", snap.Bins[0])
	}
	var total uint64
	for _, b := range snap.Bins {
		total += b
	}
	if total != snap.Count {
		t.Fatalf("bin total = %d, count = %d", total, snap.Count)
	}
}

func TestSketchClamping(t *testing.T) {
	snap := sketchOf([]float64{-0.5, 1.5, math.NaN()}, 0.5)
	if snap.Count != 3 {
		t.Fatalf("count = %d, want 3", snap.Count)
	}
	if snap.Bins[0] != 2 { // -0.5 and NaN clamp to 0
		t.Fatalf("bin 0 = %d, want 2", snap.Bins[0])
	}
	if snap.Bins[SketchBins-1] != 1 { // 1.5 clamps to 1
		t.Fatalf("top bin = %d, want 1", snap.Bins[SketchBins-1])
	}
	if snap.Sum != SketchUnit { // 0 + 1 + 0, fixed-point
		t.Fatalf("sum = %d, want %d", snap.Sum, int64(SketchUnit))
	}
}

// TestSketchMergeExact pins the property the sharded control plane
// depends on: merging per-group sketches reproduces the unsharded
// sketch bit for bit, regardless of grouping or order — the same
// contract metrics.MergeFleet keeps for fleet summaries.
func TestSketchMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	scores := make([]float64, 3000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	flat := sketchOf(scores, 0.5)

	// Split into uneven groups, merge in several orders/groupings.
	groups := []SketchSnapshot{
		sketchOf(scores[:17], 0.5),
		sketchOf(scores[17:940], 0.5),
		sketchOf(scores[940:941], 0.5),
		sketchOf(scores[941:], 0.5),
	}
	// Left fold.
	var left SketchSnapshot
	for _, g := range groups {
		left.Merge(g)
	}
	if !reflect.DeepEqual(left, flat) {
		t.Fatalf("left-fold merge != flat sketch:\n%+v\n%+v", left, flat)
	}
	// Reverse order (commutativity).
	var rev SketchSnapshot
	for i := len(groups) - 1; i >= 0; i-- {
		rev.Merge(groups[i])
	}
	if !reflect.DeepEqual(rev, flat) {
		t.Fatal("reverse-order merge != flat sketch")
	}
	// Pairwise tree (associativity): (g0+g1) + (g2+g3).
	a, b := groups[0], groups[2]
	a.Merge(groups[1])
	b.Merge(groups[3])
	a.Merge(b)
	if !reflect.DeepEqual(a, flat) {
		t.Fatal("tree merge != flat sketch")
	}
}

func TestSketchSub(t *testing.T) {
	var s ScoreSketch
	for i := 0; i < 100; i++ {
		s.Observe(0.3, false)
	}
	prev := s.Snapshot()
	late := make([]float64, 50)
	for i := range late {
		late[i] = 0.9
		s.Observe(0.9, true)
	}
	window := s.Snapshot().Sub(prev)
	if !reflect.DeepEqual(window, sketchOf(late, 0.5)) {
		t.Fatalf("cumulative delta != direct sketch of the window:\n%+v", window)
	}
}

func TestSketchPSIAndKS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	low := make([]float64, 2000)
	lowAgain := make([]float64, 2000)
	high := make([]float64, 2000)
	for i := range low {
		low[i] = 0.2 + 0.1*rng.Float64()
		lowAgain[i] = 0.2 + 0.1*rng.Float64()
		high[i] = 0.7 + 0.1*rng.Float64()
	}
	base, same, shifted := sketchOf(low, 0.5), sketchOf(lowAgain, 0.5), sketchOf(high, 0.5)

	if psi := PSI(base, base); psi != 0 {
		t.Fatalf("PSI(x, x) = %v, want 0", psi)
	}
	if psi := PSI(base, same); psi > 0.1 {
		t.Fatalf("PSI of two samples from the same distribution = %v, want < 0.1 (stable)", psi)
	}
	if psi := PSI(base, shifted); psi < 0.25 {
		t.Fatalf("PSI of a disjoint shift = %v, want > 0.25 (major)", psi)
	}
	if a, b := PSI(base, shifted), PSI(shifted, base); math.Abs(a-b) > 1e-12 {
		t.Fatalf("PSI not symmetric: %v vs %v", a, b)
	}

	if ks := KS(base, same); ks > 0.1 {
		t.Fatalf("KS of same-distribution samples = %v, want small", ks)
	}
	if ks := KS(base, shifted); ks < 0.99 {
		// Disjoint supports: CDFs separate completely.
		t.Fatalf("KS of a disjoint shift = %v, want ≈ 1", ks)
	}

	var empty SketchSnapshot
	if PSI(empty, base) != 0 || PSI(base, empty) != 0 || KS(empty, base) != 0 {
		t.Fatal("distance against an empty sketch must be 0, not drift")
	}
}

func TestSketchObserveAllocFree(t *testing.T) {
	var s ScoreSketch
	if allocs := testing.AllocsPerRun(1000, func() { s.Observe(0.42, false) }); allocs != 0 {
		t.Fatalf("ScoreSketch.Observe allocates %v/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { _ = s.Snapshot() }); allocs != 0 {
		t.Fatalf("ScoreSketch.Snapshot allocates %v/op, want 0", allocs)
	}
}

func TestSketchConcurrentObserve(t *testing.T) {
	var s ScoreSketch
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				v := rng.Float64()
				s.Observe(v, v >= 0.5)
				if i%512 == 0 {
					_ = s.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Count != writers*per {
		t.Fatalf("count = %d, want %d", snap.Count, writers*per)
	}
	var total uint64
	for _, b := range snap.Bins {
		total += b
	}
	if total != snap.Count {
		t.Fatalf("bin total = %d, count = %d", total, snap.Count)
	}
}

func BenchmarkSketchObserve(b *testing.B) {
	var s ScoreSketch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(float64(i%100)/100, i%3 == 0)
	}
}
