package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusHelpGolden pins the full exposition output for a
// described registry: # HELP ahead of # TYPE, escaping, and stable
// ordering — the contract metric linters check.
func TestWritePrometheusHelpGolden(t *testing.T) {
	r := NewRegistry()
	r.Describe("ff_frames_total", "Frames processed across all streams.")
	r.Counter("ff_frames_total").Add(42)
	r.Describe("ff_queue_depth", `Depth with a \ backslash
and a newline.`)
	r.Gauge("ff_queue_depth").Set(7)
	r.Describe("ff_extract_ns", "Extraction latency in nanoseconds.")
	h := r.Histogram("ff_extract_ns")
	h.ObserveNs(1000)
	h.ObserveNs(1000)
	// Undescribed instruments get no HELP line, only TYPE.
	r.Counter("ff_undescribed_total").Inc()

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	p50 := h.Quantile(0.50)
	p95 := h.Quantile(0.95)
	p99 := h.Quantile(0.99)
	want := "# HELP ff_frames_total Frames processed across all streams.\n" +
		"# TYPE ff_frames_total counter\n" +
		"ff_frames_total 42\n" +
		"# TYPE ff_undescribed_total counter\n" +
		"ff_undescribed_total 1\n" +
		`# HELP ff_queue_depth Depth with a \\ backslash\nand a newline.` + "\n" +
		"# TYPE ff_queue_depth gauge\n" +
		"ff_queue_depth 7\n" +
		"# HELP ff_extract_ns Extraction latency in nanoseconds.\n" +
		"# TYPE ff_extract_ns summary\n" +
		fmt.Sprintf("ff_extract_ns{quantile=\"0.5\"} %d\n", p50) +
		fmt.Sprintf("ff_extract_ns{quantile=\"0.95\"} %d\n", p95) +
		fmt.Sprintf("ff_extract_ns{quantile=\"0.99\"} %d\n", p99) +
		"ff_extract_ns_sum 2000\n" +
		"ff_extract_ns_count 2\n"
	if got := buf.String(); got != want {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusSketch(t *testing.T) {
	r := NewRegistry()
	r.Describe("ff_mc_scores", "MC score distribution.")
	sk := r.Sketch("ff_mc_scores")
	sk.Observe(0.10, false) // bin 3  (0.09375–0.125)
	sk.Observe(0.90, true)  // bin 28 (0.875–0.90625)
	sk.Observe(0.95, true)  // bin 30 (0.9375–0.96875)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP ff_mc_scores MC score distribution.\n# TYPE ff_mc_scores histogram\n",
		"ff_mc_scores_bucket{le=\"0.125\"} 1\n",   // cumulative through bin 3
		"ff_mc_scores_bucket{le=\"0.875\"} 1\n",   // nothing between
		"ff_mc_scores_bucket{le=\"0.90625\"} 2\n", // + bin 28
		"ff_mc_scores_bucket{le=\"1\"} 3\n",       // top edge sees all
		"ff_mc_scores_bucket{le=\"+Inf\"} 3\n",
		"ff_mc_scores_count 3\n",
		"ff_mc_scores_passes 2\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("sketch exposition missing %q:\n%s", want, text)
		}
	}
	// Registry snapshot carries the semantic views.
	byName := map[string]float64{}
	for _, m := range r.Snapshot() {
		byName[m.Name] = m.Value
	}
	if byName["ff_mc_scores/count"] != 3 {
		t.Fatalf("sketch snapshot count = %v", byName["ff_mc_scores/count"])
	}
	if got := byName["ff_mc_scores/pass_rate"]; got < 0.66 || got > 0.67 {
		t.Fatalf("sketch snapshot pass_rate = %v, want 2/3", got)
	}
}

// TestShardGaugeNames pins the shard-gauge naming scheme: the same
// (shard, name) pair always resolves to the same instrument, the
// composite name aliases a directly-registered gauge of that name
// (one instrument, not two drifting copies), and distinct shards can
// never collide because the shard index is a complete %d prefix.
func TestShardGaugeNames(t *testing.T) {
	r := NewRegistry()
	a := r.ShardGauge(3, "nodes")
	if again := r.ShardGauge(3, "nodes"); again != a {
		t.Fatal("ShardGauge is not get-or-create")
	}
	if alias := r.Gauge("ff_fleet_shard_3_nodes"); alias != a {
		t.Fatal("ShardGauge and the literal composite name must alias one gauge")
	}
	// Adjacent shard/name splits that concatenate similarly still
	// produce distinct names: the underscore separators are fixed.
	b := r.ShardGauge(1, "2_nodes")
	c := r.ShardGauge(12, "nodes")
	if b == c {
		t.Fatal("ShardGauge(1, \"2_nodes\") collided with ShardGauge(12, \"nodes\")")
	}
	b.Set(5)
	c.Set(9)
	byName := map[string]float64{}
	for _, m := range r.Snapshot() {
		byName[m.Name] = m.Value
	}
	if byName["ff_fleet_shard_1_2_nodes"] != 5 || byName["ff_fleet_shard_12_nodes"] != 9 {
		t.Fatalf("shard gauge snapshot = %v", byName)
	}
}

// TestSnapshotOrderingUnderConcurrentCreation registers instruments
// from many goroutines while snapshotting: every snapshot must be
// sorted and internally consistent (a histogram's expanded entries
// all present), and the final snapshot complete.
func TestSnapshotOrderingUnderConcurrentCreation(t *testing.T) {
	r := NewRegistry()
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				switch rng.Intn(4) {
				case 0:
					r.Counter(fmt.Sprintf("ff_c_%d_%d", w, i)).Inc()
				case 1:
					r.Gauge(fmt.Sprintf("ff_g_%d_%d", w, i)).Set(1)
				case 2:
					r.Histogram(fmt.Sprintf("ff_h_%d_%d", w, i)).ObserveNs(10)
				default:
					r.Sketch(fmt.Sprintf("ff_s_%d_%d", w, i)).Observe(0.5, true)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	check := func(snap []Metric) {
		for i := 1; i < len(snap); i++ {
			if snap[i-1].Name > snap[i].Name {
				t.Fatalf("snapshot not sorted: %q > %q", snap[i-1].Name, snap[i].Name)
			}
		}
	}
	for {
		select {
		case <-done:
			snap := r.Snapshot()
			check(snap)
			names := map[string]bool{}
			for _, m := range snap {
				names[m.Name] = true
			}
			for _, m := range snap {
				if strings.HasPrefix(m.Name, "ff_h_") {
					base := m.Name[:strings.LastIndex(m.Name, "/")]
					for _, suffix := range []string{"/count", "/mean", "/p50", "/p95", "/p99", "/max"} {
						if !names[base+suffix] {
							t.Fatalf("histogram %s missing expanded entry %s", base, suffix)
						}
					}
				}
			}
			return
		default:
			check(r.Snapshot())
		}
	}
}
