package obs

import (
	"math"
	"sync/atomic"
)

// SketchBins is the score-sketch resolution: bin b counts scores in
// [b/SketchBins, (b+1)/SketchBins), with the top bin closed at 1.0.
const SketchBins = 32

// SketchUnit is the fixed-point scale for a sketch's sum and
// sum-of-squares moments. Scores are quantized to integer multiples of
// 1/SketchUnit at observation time, so the moments are integer sums:
// unlike float accumulation, they merge exactly under any grouping or
// ordering — the property the sharded rollup's flat-vs-merged
// deep-equality check depends on. At 2^20 the quantization error per
// observation is under 10^-6, far below any drift threshold.
const SketchUnit = 1 << 20

// ScoreSketch is a compact, mergeable sketch of a microclassifier's
// score distribution on [0, 1]: the observation count, the pass count
// (scores at or above the MC's deploy threshold), fixed-point first
// and second moments, and a fixed 32-bin histogram. Observe is
// lock-free (atomic counters) and allocation-free, safe for any number
// of concurrent writers; readers take snapshots without stopping them.
//
// The sketch is the semantic complement to Histogram: Histogram says
// how fast the pipeline runs, ScoreSketch says what the model is doing
// — the distribution a drift detector compares against its
// frozen-at-deploy baseline.
type ScoreSketch struct {
	count  atomic.Uint64
	passes atomic.Uint64
	sum    atomic.Int64 // fixed-point, units of 1/SketchUnit
	sumsq  atomic.Int64 // fixed-point, units of 1/SketchUnit
	bins   [SketchBins]atomic.Uint64
}

// sketchBin maps a score to its bin index, clamping out-of-range
// inputs (scores are sigmoid outputs, but NaN-safety costs nothing).
func sketchBin(score float64) int {
	b := int(score * SketchBins)
	if b < 0 || math.IsNaN(score) {
		return 0
	}
	if b >= SketchBins {
		return SketchBins - 1
	}
	return b
}

// Observe records one score and whether it passed the MC's threshold.
// Allocation-free. The score is clamped to [0, 1] and quantized to
// 1/SketchUnit before accumulation so that merged and unmerged sketch
// moments agree bit for bit.
func (s *ScoreSketch) Observe(score float64, pass bool) {
	if score < 0 || math.IsNaN(score) {
		score = 0
	} else if score > 1 {
		score = 1
	}
	q := int64(score*SketchUnit + 0.5)
	s.bins[sketchBin(score)].Add(1)
	s.count.Add(1)
	s.sum.Add(q)
	s.sumsq.Add(q * q / SketchUnit)
	if pass {
		s.passes.Add(1)
	}
}

// Count returns the number of observations.
func (s *ScoreSketch) Count() uint64 { return s.count.Load() }

// Snapshot copies the sketch's current counters. Concurrent writers
// may land between field reads, so Count can be slightly ahead of the
// bin total; consumers tolerate this the same way HistSnapshot readers
// do.
func (s *ScoreSketch) Snapshot() SketchSnapshot {
	var out SketchSnapshot
	out.Count = s.count.Load()
	out.Passes = s.passes.Load()
	out.Sum = s.sum.Load()
	out.SumSq = s.sumsq.Load()
	for i := range s.bins {
		out.Bins[i] = s.bins[i].Load()
	}
	return out
}

// SketchSnapshot is a point-in-time copy of a ScoreSketch — the
// wire format heartbeats carry to the controller (plain exported
// fields, gob-friendly, fixed-size). All fields are integers, so Merge
// and Sub are exact: associative, commutative, and independent of how
// a fleet's sketches are grouped into shards.
type SketchSnapshot struct {
	// Count and Passes are the observation and threshold-pass totals.
	Count  uint64
	Passes uint64
	// Sum and SumSq are the first and second moments in fixed-point
	// units of 1/SketchUnit (see Mean/Variance for float views).
	Sum   int64
	SumSq int64
	// Bins is the 32-bin score histogram over [0, 1].
	Bins [SketchBins]uint64
}

// Merge folds another snapshot in. Every field is an integer total, so
// unlike Summary.Merge this is exact — not a worst-case bound:
// merging per-shard sketches in any order or grouping reproduces the
// unsharded sketch bit for bit.
func (s *SketchSnapshot) Merge(o SketchSnapshot) {
	s.Count += o.Count
	s.Passes += o.Passes
	s.Sum += o.Sum
	s.SumSq += o.SumSq
	for i := range s.Bins {
		s.Bins[i] += o.Bins[i]
	}
}

// Sub returns the delta s − o, the observations recorded after o was
// taken. Heartbeat sketches are cumulative, so the controller derives
// a rolling recent window by subtracting the previous cumulative
// snapshot. Exact for the same reason Merge is.
func (s SketchSnapshot) Sub(o SketchSnapshot) SketchSnapshot {
	d := s
	d.Count -= o.Count
	d.Passes -= o.Passes
	d.Sum -= o.Sum
	d.SumSq -= o.SumSq
	for i := range d.Bins {
		d.Bins[i] -= o.Bins[i]
	}
	return d
}

// Mean returns the average score, 0 when empty.
func (s SketchSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / SketchUnit / float64(s.Count)
}

// Variance returns the population score variance, 0 when empty.
func (s SketchSnapshot) Variance() float64 {
	if s.Count == 0 {
		return 0
	}
	m := s.Mean()
	v := float64(s.SumSq)/SketchUnit/float64(s.Count) - m*m
	if v < 0 {
		return 0 // fixed-point rounding can dip epsilon-negative
	}
	return v
}

// StdDev returns the population score standard deviation, 0 when
// empty. The canary evaluator uses it as a degeneracy check: a
// candidate whose scores have (near) zero spread cannot discriminate
// frames and is rolled back regardless of its agreement with the
// incumbent.
func (s SketchSnapshot) StdDev() float64 {
	return math.Sqrt(s.Variance())
}

// PassRate returns the fraction of observations at or above the MC's
// threshold, 0 when empty.
func (s SketchSnapshot) PassRate() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Passes) / float64(s.Count)
}

// psiFloor is the probability floor for PSI's log-ratio terms: an
// empty bin on one side would otherwise send the index to infinity.
const psiFloor = 1e-4

// PSI returns the Population Stability Index between a baseline and a
// recent score distribution, computed over the 32 shared bins:
//
//	PSI = Σ (pᵢ − qᵢ) · ln(pᵢ/qᵢ)
//
// with per-bin proportions floored at 1e-4. PSI is symmetric in its
// arguments and zero for identical distributions. Industry convention
// reads < 0.1 as stable, 0.1–0.25 as moderate shift, and > 0.25 as a
// major shift that warrants retraining. Returns 0 when either side is
// empty (no evidence is not evidence of drift).
func PSI(base, recent SketchSnapshot) float64 {
	if base.Count == 0 || recent.Count == 0 {
		return 0
	}
	var psi float64
	for i := 0; i < SketchBins; i++ {
		p := float64(base.Bins[i]) / float64(base.Count)
		q := float64(recent.Bins[i]) / float64(recent.Count)
		if p < psiFloor {
			p = psiFloor
		}
		if q < psiFloor {
			q = psiFloor
		}
		psi += (q - p) * math.Log(q/p)
	}
	return psi
}

// KS returns the binned Kolmogorov–Smirnov statistic between a
// baseline and a recent score distribution: the maximum absolute gap
// between their empirical CDFs, evaluated at the 32 shared bin edges.
// Ranges over [0, 1]; zero for identical distributions. Binning makes
// it a lower bound on the exact KS distance, which is the safe
// direction for an alert threshold. Returns 0 when either side is
// empty.
func KS(base, recent SketchSnapshot) float64 {
	if base.Count == 0 || recent.Count == 0 {
		return 0
	}
	var cp, cq, worst float64
	for i := 0; i < SketchBins; i++ {
		cp += float64(base.Bins[i]) / float64(base.Count)
		cq += float64(recent.Bins[i]) / float64(recent.Count)
		if d := math.Abs(cp - cq); d > worst {
			worst = d
		}
	}
	return worst
}
