// Package obs is the observability layer: zero-allocation-on-hot-path
// latency histograms, a counter/gauge registry with Prometheus text
// export, fixed-size per-frame pipeline traces with Chrome trace_event
// export, an opt-in debug HTTP server, and slog helpers. Every other
// layer (core, filter, archive, fleet, metrics, cmds) may import obs;
// obs imports none of them.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the histogram resolution: bucket b counts
// observations in [2^b, 2^(b+1)) nanoseconds. Bucket 0 is the
// underflow bucket (everything below 2 ns, including zero and
// negative observations); the top bucket is the overflow bucket
// (everything at or above 2^(NumBuckets-1) ns ≈ 9 minutes).
const NumBuckets = 40

// Histogram is a log2-bucketed latency histogram. Observe is
// lock-free (atomic bucket counters) and allocation-free, safe for
// any number of concurrent writers; readers take consistent-enough
// snapshots without stopping them.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // exact total, ns
	max     atomic.Int64 // worst observation, ns
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf maps an observation in nanoseconds to its bucket index.
func bucketOf(ns int64) int {
	if ns < 2 {
		return 0 // underflow: zero, one, and negative observations
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= NumBuckets {
		b = NumBuckets - 1 // overflow
	}
	return b
}

// bucketBounds returns bucket b's value range [lo, hi) in ns. The
// overflow bucket's hi is the int64 ceiling; quantile extraction caps
// it at the observed max instead.
func bucketBounds(b int) (lo, hi int64) {
	if b == 0 {
		return 0, 2
	}
	lo = int64(1) << uint(b)
	if b == NumBuckets-1 {
		return lo, int64(1<<62) + (int64(1)<<62 - 1)
	}
	return lo, lo << 1
}

// Observe records one latency sample. Allocation-free.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one latency sample given in nanoseconds.
// Allocation-free.
func (h *Histogram) ObserveNs(ns int64) {
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram's counters.
// Concurrent writers may land between field reads, so Count can be
// slightly ahead of the bucket total; quantile extraction tolerates
// this.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Max     int64
	Buckets [NumBuckets]uint64
}

// Snapshot copies the histogram's current counters.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile returns the q-quantile (0 < q <= 1) in nanoseconds,
// linearly interpolated within the containing bucket, 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// Quantile extracts a quantile from the snapshot. Within the
// containing bucket the value is linearly interpolated across the
// bucket's range; the range is capped at the observed maximum so the
// overflow bucket (and a sparse top bucket) report real values, never
// beyond anything actually seen.
func (s *HistSnapshot) Quantile(q float64) int64 {
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	var cum float64
	for b, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target > next {
			cum = next
			continue
		}
		lo, hi := bucketBounds(b)
		if s.Max >= lo && s.Max < hi {
			hi = s.Max + 1 // don't interpolate past the observed worst
		}
		frac := (target - cum) / float64(c)
		v := lo + int64(frac*float64(hi-lo))
		if v > s.Max {
			v = s.Max
		}
		return v
	}
	return s.Max
}

// Summary is a compact, wire-friendly digest of a histogram: the
// count, the exact sum, and interpolated tail quantiles in ns. It is
// what heartbeats carry to the fleet controller.
type Summary struct {
	Count         uint64
	Sum           int64
	P50, P95, P99 int64
	Max           int64
}

// Summary digests the histogram's current state.
func (h *Histogram) Summary() Summary {
	s := h.Snapshot()
	return Summary{
		Count: s.Count,
		Sum:   s.Sum,
		P50:   s.Quantile(0.50),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
		Max:   s.Max,
	}
}

// Merge folds another summary in. Counts and sums add; quantiles and
// the max merge by worst case (the larger value wins). Quantiles of
// different distributions cannot be averaged meaningfully, so a fleet
// rollup reports the worst node's tail — a pessimistic but honest
// bound: if the rollup's p95 is fine, every node's p95 is fine. The
// cost is that merged quantiles depend on how loads are grouped only
// in the sense of being an upper envelope; they are not the true
// fleet-wide quantiles. Contrast SketchSnapshot.Merge, which carries
// full (binned, fixed-point) state and is therefore exact: the merged
// sketch is bit-for-bit the sketch of the combined observations under
// any grouping. Summary trades that exactness for a digest small
// enough to quote per heartbeat per stage.
func (s *Summary) Merge(o Summary) {
	s.Count += o.Count
	s.Sum += o.Sum
	s.P50 = max(s.P50, o.P50)
	s.P95 = max(s.P95, o.P95)
	s.P99 = max(s.P99, o.P99)
	s.Max = max(s.Max, o.Max)
}

// Mean returns the average observation in ns, 0 when empty.
func (s Summary) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
