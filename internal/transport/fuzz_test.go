package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// validRecordBytes frames one gob-encoded upload record.
func validRecordBytes(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	rec := UploadRecord{MCName: "fuzz-mc", EventID: 3, Start: 10, End: 20, Bits: 4096, Final: true, Seq: 7}
	if err := WriteRecord(&buf, KindUpload, rec); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzReadHeader(f *testing.F) {
	var ok bytes.Buffer
	WriteHeader(&ok, Version2)
	f.Add(ok.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00})
	f.Add([]byte{0xFF, 0x00, 0xFF, 0x05, 0x00, 0x63}) // bad version
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05}) // bad magic
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ReadHeader(bytes.NewReader(data))
		if err != nil {
			return
		}
		if v == 0 || v > MaxVersion {
			t.Fatalf("ReadHeader accepted version %d", v)
		}
	})
}

func FuzzReadRecord(f *testing.F) {
	whole := validRecordBytes(f)
	f.Add(whole)
	f.Add(whole[:len(whole)-2]) // truncated payload
	f.Add(whole[:3])            // truncated header
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-1] ^= 0x40 // payload corruption
	f.Add(flipped)
	huge := []byte{KindUpload, 0x7F, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0} // 2 GB length claim
	f.Add(huge)
	maxed := []byte{KindUpload, 0x01, 0x00, 0x00, 0x00, 0, 0, 0, 0, 'x'} // in-limit claim, short body
	f.Add(maxed)
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body, err := ReadRecord(bytes.NewReader(data))
		if err != nil {
			// Errors must be diagnosable, never a desync: corruption
			// and oversize claims wrap ErrCorrupt; truncation is an
			// EOF variant.
			return
		}
		// On success the framing must be internally consistent.
		if len(body) > len(data)-recHeaderLen {
			t.Fatalf("body of %d bytes from %d input bytes", len(body), len(data))
		}
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[5:9]) {
			t.Fatalf("accepted record whose CRC does not match")
		}
		// Decoding an arbitrary accepted payload must not panic.
		var rec UploadRecord
		_ = DecodeRecord(body, &rec)
		_ = kind
	})
}

// TestReadRecordCorruption pins the typed-error contract: any wire
// damage surfaces as ErrCorrupt, not a gob error or a hang.
func TestReadRecordCorruption(t *testing.T) {
	whole := validRecordBytes(t)
	t.Run("payload bit flip", func(t *testing.T) {
		bad := append([]byte(nil), whole...)
		bad[recHeaderLen+4] ^= 0x01
		if _, _, err := ReadRecord(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("crc field flip", func(t *testing.T) {
		bad := append([]byte(nil), whole...)
		bad[6] ^= 0x80
		if _, _, err := ReadRecord(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("length beyond limit", func(t *testing.T) {
		bad := []byte{KindUpload, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
		if _, _, err := ReadRecord(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("mid-record byte drop", func(t *testing.T) {
		bad := append([]byte(nil), whole[:recHeaderLen+3]...)
		bad = append(bad, whole[recHeaderLen+5:]...)
		bad = append(bad, whole...) // next record supplies the missing length
		if _, _, err := ReadRecord(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("clean record still reads", func(t *testing.T) {
		kind, body, err := ReadRecord(bytes.NewReader(whole))
		if err != nil || kind != KindUpload {
			t.Fatalf("kind %d, err %v", kind, err)
		}
		var rec UploadRecord
		if err := DecodeRecord(body, &rec); err != nil || rec.Seq != 7 {
			t.Fatalf("rec %+v, err %v", rec, err)
		}
	})
}

// TestReadRecordBoundedAllocation checks a huge length claim on a
// truncated stream fails after at most one chunk of buffer growth —
// the reader never allocates from the length prefix alone.
func TestReadRecordBoundedAllocation(t *testing.T) {
	hdr := []byte{KindUpload, 0x00, 0xF0, 0x00, 0x00, 0, 0, 0, 0} // claims ~15 MB
	input := append(hdr, make([]byte, 32)...)
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := ReadRecord(bytes.NewReader(input)); err == nil {
			t.Fatal("truncated 15 MB claim accepted")
		}
	})
	// One buffer chunk + reader + error wrapping: a 15 MB up-front
	// make would not change the alloc count, so also bound bytes via
	// a custom reader that counts what was ever requested.
	if allocs > 16 {
		t.Fatalf("ReadRecord made %.0f allocations on a truncated claim", allocs)
	}
	cr := &countingReader{data: input}
	_, _, err := ReadRecord(cr)
	if err == nil {
		t.Fatal("truncated claim accepted")
	}
	if cr.maxReq > readChunk {
		t.Fatalf("reader requested %d bytes in one call, chunk limit is %d", cr.maxReq, readChunk)
	}
}

type countingReader struct {
	data   []byte
	off    int
	maxReq int
}

func (r *countingReader) Read(p []byte) (int, error) {
	if len(p) > r.maxReq {
		r.maxReq = len(p)
	}
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
