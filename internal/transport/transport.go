// Package transport carries FilterForward traffic between an edge node
// and a datacenter over a real network connection. The paper's
// evaluation models the uplink as a bandwidth constraint
// (internal/core's token bucket); this package provides the wire layer
// a deployment needs: length-prefixed gob frames over any net.Conn, a
// legacy one-way server that feeds a core.Datacenter, and the framing
// primitives internal/fleet layers its bidirectional control plane on.
//
// The protocol is deliberately simple and version-tagged:
//
//	uint32 magic | uint16 version | stream of records
//	record: uint8 kind | uint32 length | uint32 crc32(payload) | gob payload
//
// The per-record CRC turns wire damage (bit flips, mid-record byte
// loss) into a typed ErrCorrupt at the reader instead of a gob decode
// error — or worse, a silent desync that hangs the session. Readers
// never trust the length prefix for allocation: payloads are read in
// bounded chunks, so a hostile or damaged header cannot force a large
// up-front allocation.
//
// Version 1 is the original one-way upload pipe: the edge writes the
// header and streams KindUpload records until KindBye. Version 2 keeps
// the identical framing but makes the connection bidirectional: after
// the client header the server answers with its own header, and both
// sides exchange the fleet record kinds (session hello, microclassifier
// deploy/undeploy, demand-fetch request/response, heartbeats). Payload
// schemas for the v2 kinds live in internal/fleet; this package only
// fixes the kind numbers and the framing.
//
// Reconstructed frames are not shipped (the receiver decodes uploads
// from the coded bits in a real deployment); metadata, ranges, event
// IDs, and coded sizes are.
package transport

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
)

// magic identifies the wire format, including the record framing
// revision. It was bumped (…04 → …05) when records gained the CRC
// field: a pre-CRC build pairs with a CRC build only up to the
// handshake, where the stale magic is rejected cleanly — without the
// bump the handshake would succeed and every record would desync.
const magic = 0xFF00FF05

// Protocol versions. A client announces the highest version it speaks
// in its header; a v2 server echoes the version it accepts back.
const (
	// Version1 is the legacy one-way upload protocol.
	Version1 = 1
	// Version2 adds the bidirectional fleet control plane.
	Version2 = 2
	// MaxVersion is the newest version this build speaks.
	MaxVersion = Version2
)

// Record kinds. Kinds 1–2 exist since version 1; the rest require
// version 2.
const (
	// KindUpload carries one UploadRecord (edge → datacenter).
	KindUpload uint8 = 1
	// KindBye closes the session cleanly (either direction).
	KindBye uint8 = 2
	// KindHello announces an edge node and its stream inventory
	// (edge → datacenter, first record of a v2 session).
	KindHello uint8 = 3
	// KindWelcome acknowledges a hello with a session ID
	// (datacenter → edge, first record after the server header).
	KindWelcome uint8 = 4
	// KindDeploy ships a serialized microclassifier to a stream
	// (datacenter → edge).
	KindDeploy uint8 = 5
	// KindUndeploy removes a deployed microclassifier
	// (datacenter → edge).
	KindUndeploy uint8 = 6
	// KindFetchRequest asks the edge archive for context video
	// (datacenter → edge).
	KindFetchRequest uint8 = 7
	// KindFetchResponse answers a fetch request with coded-segment
	// accounting (edge → datacenter).
	KindFetchResponse uint8 = 8
	// KindHeartbeat carries periodic per-stream pipeline stats
	// (edge → datacenter).
	KindHeartbeat uint8 = 9
	// KindAck acknowledges a deploy/undeploy request, carrying an
	// error string on failure (edge → datacenter).
	KindAck uint8 = 10
	// KindFetchData streams a chunk of demand-fetched frame pixels
	// from the edge's on-disk archive (edge → datacenter). Zero or
	// more data records precede the KindFetchResponse trailer of the
	// same sequence number; they are only sent when the fetch request
	// set IncludeData.
	KindFetchData uint8 = 11
	// KindUploadAck acknowledges receipt of an upload by its
	// edge-assigned sequence number (datacenter → edge). The edge
	// retires the upload from its resend buffer; unacked uploads are
	// retransmitted after a reconnect, and the receiver deduplicates
	// by sequence number — together, exactly-once upload accounting.
	KindUploadAck uint8 = 12
	// KindRedirect tells an edge its node is owned by a different
	// controller shard (datacenter → edge). Sent instead of a welcome
	// when a hello lands on the wrong shard of a sharded control
	// plane, or mid-session when a shard-count change re-homes the
	// node; the edge reconnects and its resume hello reconciles on the
	// new owner exactly like any other reconnect.
	KindRedirect uint8 = 13
	// KindForward hands a validated hello from the router to the
	// owning shard (router → shard). It pins the placement epoch the
	// routing decision was made under, so a shard can detect a
	// concurrent re-shard and redirect instead of registering a node
	// it no longer owns.
	KindForward uint8 = 14
)

// MaxRecordBytes bounds a single record payload, keeping a
// misbehaving peer from forcing unbounded allocation.
const MaxRecordBytes = 16 << 20

// readChunk bounds how much ReadRecord allocates ahead of the bytes
// actually arriving, so a length prefix claiming MaxRecordBytes on a
// truncated stream costs one chunk, not 16 MB.
const readChunk = 64 << 10

// recHeaderLen is the record frame header: kind + length + crc32.
const recHeaderLen = 9

// ErrVersion is wrapped by handshake errors caused by a version this
// build does not speak.
var ErrVersion = errors.New("unsupported version")

// ErrCorrupt is wrapped by record-read errors caused by wire damage —
// a length prefix beyond the record limit or a payload failing its
// CRC. Sessions treat it as a broken connection and reconnect rather
// than trying to resync the stream.
var ErrCorrupt = errors.New("corrupt record")

// WriteHeader writes the protocol header (magic + version) to w.
func WriteHeader(w io.Writer, version uint16) error {
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[0:4], magic)
	binary.BigEndian.PutUint16(hdr[4:6], version)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: handshake: %w", err)
	}
	return nil
}

// ReadHeader reads and validates a protocol header, returning the
// peer's announced version. Versions above MaxVersion (or zero) fail
// with an error wrapping ErrVersion; the caller decides which of the
// valid versions it serves.
func ReadHeader(r io.Reader) (uint16, error) {
	var hdr [6]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("transport: read handshake: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != magic {
		return 0, errors.New("transport: bad magic")
	}
	v := binary.BigEndian.Uint16(hdr[4:6])
	if v == 0 || v > MaxVersion {
		return 0, fmt.Errorf("transport: %w %d", ErrVersion, v)
	}
	return v, nil
}

// WriteRecord gob-encodes payload and writes one framed record to w.
// The caller is responsible for serializing concurrent writers.
func WriteRecord(w io.Writer, kind uint8, payload any) error {
	var bufWriter countingBuffer
	if err := gob.NewEncoder(&bufWriter).Encode(payload); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	if len(bufWriter.data) > MaxRecordBytes {
		return fmt.Errorf("transport: record of %d bytes exceeds limit", len(bufWriter.data))
	}
	var hdr [recHeaderLen]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(bufWriter.data)))
	binary.BigEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(bufWriter.data))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(bufWriter.data)
	return err
}

// WriteRecordDeadline is WriteRecord with the write bounded by a
// deadline, so a stalled peer cannot hang the writer forever. A
// non-positive timeout writes without a deadline.
func WriteRecordDeadline(conn net.Conn, kind uint8, payload any, timeout time.Duration) error {
	if timeout > 0 {
		if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		defer conn.SetWriteDeadline(time.Time{})
	}
	return WriteRecord(conn, kind, payload)
}

// ReadRecord reads one framed record, returning its kind and raw
// payload bytes. A clean end of stream at a record boundary returns
// io.EOF; truncation mid-record returns io.ErrUnexpectedEOF; a length
// prefix beyond the limit or a payload failing its CRC returns an
// error wrapping ErrCorrupt. The payload buffer grows in bounded
// chunks as bytes arrive, never from the length prefix alone.
func ReadRecord(r io.Reader) (uint8, []byte, error) {
	var rhdr [recHeaderLen]byte
	if _, err := io.ReadFull(r, rhdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	size := binary.BigEndian.Uint32(rhdr[1:5])
	sum := binary.BigEndian.Uint32(rhdr[5:9])
	if size > MaxRecordBytes {
		return 0, nil, fmt.Errorf("transport: %w: length prefix claims %d bytes (limit %d)", ErrCorrupt, size, MaxRecordBytes)
	}
	cap0 := int(size)
	if cap0 > readChunk {
		cap0 = readChunk
	}
	body := make([]byte, 0, cap0)
	for len(body) < int(size) {
		n := int(size) - len(body)
		if n > readChunk {
			n = readChunk
		}
		off := len(body)
		body = append(body, zeroChunk[:n]...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
	}
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, fmt.Errorf("transport: %w: payload checksum mismatch (kind %d, %d bytes)", ErrCorrupt, rhdr[0], size)
	}
	return rhdr[0], body, nil
}

// ReadRecordDeadline is ReadRecord with every read bounded by a
// silence deadline — the heartbeat-liveness primitive: a peer that
// goes quiet for the window surfaces as os.ErrDeadlineExceeded
// instead of a hang. The deadline re-arms on every read, so it
// bounds the gap between arrivals, not total record transfer time: a
// large record trickling over a slow link stays alive as long as
// bytes keep flowing. A non-positive timeout reads without one.
func ReadRecordDeadline(conn net.Conn, timeout time.Duration) (uint8, []byte, error) {
	if timeout <= 0 {
		return ReadRecord(conn)
	}
	defer conn.SetReadDeadline(time.Time{})
	return ReadRecord(progressReader{conn: conn, timeout: timeout})
}

// progressReader re-arms the connection's read deadline before each
// read, turning an absolute deadline into a max-silence window.
type progressReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (r progressReader) Read(p []byte) (int, error) {
	if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
		return 0, err
	}
	return r.conn.Read(p)
}

// zeroChunk is the shared zero source ReadRecord grows buffers from.
var zeroChunk [readChunk]byte

// DecodeRecord gob-decodes a record payload read by ReadRecord.
func DecodeRecord(body []byte, into any) error {
	if err := gob.NewDecoder(bytesReader(body)).Decode(into); err != nil {
		return fmt.Errorf("transport: decode: %w", err)
	}
	return nil
}

// UploadRecord is the wire form of core.Upload (without pixel data).
type UploadRecord struct {
	MCName  string
	EventID uint64
	Start   int
	End     int
	Bits    int64
	Final   bool
	// Seq is the sender-assigned upload sequence number, strictly
	// increasing per edge node across reconnects. Receivers
	// deduplicate retransmissions by it and acknowledge it with
	// KindUploadAck; zero means unsequenced (legacy v1 senders), which
	// is never deduplicated or acked.
	Seq uint64
}

// ToRecord strips the non-wire fields from an upload.
func ToRecord(u core.Upload) UploadRecord {
	return UploadRecord{MCName: u.MCName, EventID: u.EventID, Start: u.Start, End: u.End, Bits: u.Bits, Final: u.Final}
}

// ToUpload converts a received record back to a core.Upload.
func (r UploadRecord) ToUpload() core.Upload {
	return core.Upload{MCName: r.MCName, EventID: r.EventID, Start: r.Start, End: r.End, Bits: r.Bits, Final: r.Final}
}

// Client streams uploads to a datacenter endpoint over protocol v1. It
// is safe for a single goroutine (the edge pipeline loop). The fleet
// agent (internal/fleet) supersedes it for bidirectional sessions.
type Client struct {
	conn net.Conn
	w    io.Writer
}

// Dial connects to a datacenter listener.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection, writing the handshake.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{conn: conn, w: conn}
	if err := WriteHeader(c.w, Version1); err != nil {
		return nil, err
	}
	return c, nil
}

// Send transmits one upload.
func (c *Client) Send(u core.Upload) error {
	return WriteRecord(c.w, KindUpload, ToRecord(u))
}

// SendAll transmits a batch of uploads.
func (c *Client) SendAll(us []core.Upload) error {
	for _, u := range us {
		if err := c.Send(u); err != nil {
			return err
		}
	}
	return nil
}

// Close sends the goodbye record and closes the connection.
func (c *Client) Close() error {
	err := WriteRecord(c.w, KindBye, struct{}{})
	cerr := c.conn.Close()
	if err != nil {
		return err
	}
	return cerr
}

// Server accepts legacy v1 edge connections and forwards their uploads
// into a core.Datacenter. The fleet controller (internal/fleet)
// supersedes it for v2 sessions and serves v1 peers for compatibility.
type Server struct {
	dc *core.Datacenter

	mu       sync.Mutex
	listener net.Listener
	received int
	wg       sync.WaitGroup
}

// NewServer wraps a datacenter.
func NewServer(dc *core.Datacenter) *Server {
	return &Server{dc: dc}
}

// Listen starts accepting on the given address and returns the bound
// address (useful with ":0").
func (s *Server) Listen(network, addr string) (net.Addr, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				_ = s.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr(), nil
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.listener
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Received returns the number of uploads accepted so far.
func (s *Server) Received() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// ServeConn processes one edge connection until goodbye or error. It
// is exported so tests (and in-process deployments) can drive it over
// net.Pipe. Only protocol v1 peers are served; v2 peers belong to the
// fleet controller.
func (s *Server) ServeConn(conn io.Reader) error {
	v, err := ReadHeader(conn)
	if err != nil {
		return err
	}
	if v != Version1 {
		return fmt.Errorf("transport: %w %d (legacy server speaks v1 only)", ErrVersion, v)
	}
	for {
		kind, body, err := ReadRecord(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch kind {
		case KindUpload:
			var rec UploadRecord
			if err := DecodeRecord(body, &rec); err != nil {
				return fmt.Errorf("transport: decode upload: %w", err)
			}
			s.mu.Lock()
			s.dc.Receive(rec.ToUpload())
			s.received++
			s.mu.Unlock()
		case KindBye:
			return nil
		default:
			return fmt.Errorf("transport: unknown record kind %d", kind)
		}
	}
}

// countingBuffer is a minimal growable write buffer.
type countingBuffer struct{ data []byte }

func (b *countingBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// bytesReader avoids importing bytes for one call site.
type sliceReader struct {
	data []byte
	off  int
}

func bytesReader(b []byte) *sliceReader { return &sliceReader{data: b} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
