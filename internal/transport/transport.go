// Package transport carries FilterForward uploads from an edge node to
// a datacenter over a real network connection. The paper's evaluation
// models the uplink as a bandwidth constraint (internal/core's token
// bucket); this package provides the wire layer a deployment needs:
// length-prefixed gob frames over any net.Conn, a server that feeds a
// core.Datacenter, and a client the edge loop hands its uploads to.
//
// The protocol is deliberately simple and version-tagged:
//
//	uint32 magic | uint16 version | stream of records
//	record: uint8 kind | uint32 length | gob payload
//
// Reconstructed frames are not shipped (the receiver decodes uploads
// from the coded bits in a real deployment); metadata, ranges, event
// IDs, and coded sizes are.
package transport

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
)

const (
	magic   = 0xFF00FF04
	version = 1

	kindUpload = 1
	kindBye    = 2
)

// maxRecordBytes bounds a single record to keep a misbehaving peer
// from forcing unbounded allocation.
const maxRecordBytes = 16 << 20

// UploadRecord is the wire form of core.Upload (without pixel data).
type UploadRecord struct {
	MCName  string
	EventID uint64
	Start   int
	End     int
	Bits    int64
	Final   bool
}

// toRecord strips the non-wire fields from an upload.
func toRecord(u core.Upload) UploadRecord {
	return UploadRecord{MCName: u.MCName, EventID: u.EventID, Start: u.Start, End: u.End, Bits: u.Bits, Final: u.Final}
}

// ToUpload converts a received record back to a core.Upload.
func (r UploadRecord) ToUpload() core.Upload {
	return core.Upload{MCName: r.MCName, EventID: r.EventID, Start: r.Start, End: r.End, Bits: r.Bits, Final: r.Final}
}

// Client streams uploads to a datacenter endpoint. It is safe for a
// single goroutine (the edge pipeline loop).
type Client struct {
	conn net.Conn
	w    io.Writer
}

// Dial connects to a datacenter listener.
func Dial(network, addr string) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection, writing the handshake.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{conn: conn, w: conn}
	var hdr [6]byte
	binary.BigEndian.PutUint32(hdr[0:4], magic)
	binary.BigEndian.PutUint16(hdr[4:6], version)
	if _, err := c.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: handshake: %w", err)
	}
	return c, nil
}

// Send transmits one upload.
func (c *Client) Send(u core.Upload) error {
	return writeRecord(c.w, kindUpload, toRecord(u))
}

// SendAll transmits a batch of uploads.
func (c *Client) SendAll(us []core.Upload) error {
	for _, u := range us {
		if err := c.Send(u); err != nil {
			return err
		}
	}
	return nil
}

// Close sends the goodbye record and closes the connection.
func (c *Client) Close() error {
	err := writeRecord(c.w, kindBye, struct{}{})
	cerr := c.conn.Close()
	if err != nil {
		return err
	}
	return cerr
}

// writeRecord frames and writes one gob payload.
func writeRecord(w io.Writer, kind uint8, payload any) error {
	var bufWriter countingBuffer
	if err := gob.NewEncoder(&bufWriter).Encode(payload); err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	var hdr [5]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:5], uint32(len(bufWriter.data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(bufWriter.data)
	return err
}

// countingBuffer is a minimal growable write buffer.
type countingBuffer struct{ data []byte }

func (b *countingBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// Server accepts edge connections and forwards their uploads into a
// core.Datacenter.
type Server struct {
	dc *core.Datacenter

	mu       sync.Mutex
	listener net.Listener
	received int
	wg       sync.WaitGroup
}

// NewServer wraps a datacenter.
func NewServer(dc *core.Datacenter) *Server {
	return &Server{dc: dc}
}

// Listen starts accepting on the given address and returns the bound
// address (useful with ":0").
func (s *Server) Listen(network, addr string) (net.Addr, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				_ = s.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr(), nil
}

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.listener
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Received returns the number of uploads accepted so far.
func (s *Server) Received() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received
}

// ServeConn processes one edge connection until goodbye or error. It
// is exported so tests (and in-process deployments) can drive it over
// net.Pipe.
func (s *Server) ServeConn(conn io.Reader) error {
	var hdr [6]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return fmt.Errorf("transport: read handshake: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != magic {
		return errors.New("transport: bad magic")
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != version {
		return fmt.Errorf("transport: unsupported version %d", v)
	}
	for {
		var rhdr [5]byte
		if _, err := io.ReadFull(conn, rhdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		size := binary.BigEndian.Uint32(rhdr[1:5])
		if size > maxRecordBytes {
			return fmt.Errorf("transport: record of %d bytes exceeds limit", size)
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return err
		}
		switch rhdr[0] {
		case kindUpload:
			var rec UploadRecord
			if err := gob.NewDecoder(bytesReader(body)).Decode(&rec); err != nil {
				return fmt.Errorf("transport: decode upload: %w", err)
			}
			s.mu.Lock()
			s.dc.Receive(rec.ToUpload())
			s.received++
			s.mu.Unlock()
		case kindBye:
			return nil
		default:
			return fmt.Errorf("transport: unknown record kind %d", rhdr[0])
		}
	}
}

// bytesReader avoids importing bytes for one call site.
type sliceReader struct {
	data []byte
	off  int
}

func bytesReader(b []byte) *sliceReader { return &sliceReader{data: b} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
