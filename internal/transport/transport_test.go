package transport

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

func sampleUploads() []core.Upload {
	return []core.Upload{
		{MCName: "mc-a", EventID: 1, Start: 10, End: 20, Bits: 4096, Final: false},
		{MCName: "mc-a", EventID: 1, Start: 20, End: 25, Bits: 2048, Final: true},
		{MCName: "mc-b", EventID: 1, Start: 12, End: 18, Bits: 999, Final: true},
	}
}

func TestRoundTripOverTCP(t *testing.T) {
	dc := core.NewDatacenter()
	srv := NewServer(dc)
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendAll(sampleUploads()); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Received() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Received() != 3 {
		t.Fatalf("received %d uploads, want 3", srv.Received())
	}

	got := dc.Uploads("mc-a")
	if len(got) != 2 || got[0].Start != 10 || got[1].End != 25 || !got[1].Final {
		t.Fatalf("mc-a uploads wrong: %+v", got)
	}
	labels := dc.PredictedLabels("mc-b", 30)
	for i := 12; i < 18; i++ {
		if !labels[i] {
			t.Fatalf("mc-b frame %d missing", i)
		}
	}
}

func TestRoundTripOverPipe(t *testing.T) {
	cConn, sConn := net.Pipe()
	dc := core.NewDatacenter()
	srv := NewServer(dc)

	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sConn) }()

	client, err := NewClient(cConn)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(sampleUploads()[0]); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(dc.Uploads("mc-a")) != 1 {
		t.Fatal("upload not delivered")
	}
}

func TestServerRejectsBadMagic(t *testing.T) {
	cConn, sConn := net.Pipe()
	srv := NewServer(core.NewDatacenter())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sConn) }()
	go func() {
		cConn.Write([]byte{0, 1, 2, 3, 4, 5})
		cConn.Close()
	}()
	if err := <-done; err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestServerRejectsOversizedRecord(t *testing.T) {
	cConn, sConn := net.Pipe()
	srv := NewServer(core.NewDatacenter())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sConn) }()
	go func() {
		// Valid handshake, then a record claiming 1 GB.
		hdr := []byte{0xFF, 0x00, 0xFF, 0x04, 0x00, 0x01}
		cConn.Write(hdr)
		cConn.Write([]byte{kindUpload, 0x40, 0x00, 0x00, 0x00})
		cConn.Close()
	}()
	if err := <-done; err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestUploadRecordConversion(t *testing.T) {
	u := core.Upload{MCName: "x", EventID: 7, Start: 1, End: 9, Bits: 55, Final: true}
	back := toRecord(u).ToUpload()
	if back.MCName != u.MCName || back.EventID != u.EventID || back.Start != u.Start ||
		back.End != u.End || back.Bits != u.Bits || back.Final != u.Final {
		t.Fatalf("round trip changed upload: %+v vs %+v", back, u)
	}
}
