package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/core"
)

func sampleUploads() []core.Upload {
	return []core.Upload{
		{MCName: "mc-a", EventID: 1, Start: 10, End: 20, Bits: 4096, Final: false},
		{MCName: "mc-a", EventID: 1, Start: 20, End: 25, Bits: 2048, Final: true},
		{MCName: "mc-b", EventID: 1, Start: 12, End: 18, Bits: 999, Final: true},
	}
}

func TestRoundTripOverTCP(t *testing.T) {
	dc := core.NewDatacenter()
	srv := NewServer(dc)
	addr, err := srv.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendAll(sampleUploads()); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Received() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Received() != 3 {
		t.Fatalf("received %d uploads, want 3", srv.Received())
	}

	got := dc.Uploads("mc-a")
	if len(got) != 2 || got[0].Start != 10 || got[1].End != 25 || !got[1].Final {
		t.Fatalf("mc-a uploads wrong: %+v", got)
	}
	labels := dc.PredictedLabels("mc-b", 30)
	for i := 12; i < 18; i++ {
		if !labels[i] {
			t.Fatalf("mc-b frame %d missing", i)
		}
	}
}

func TestRoundTripOverPipe(t *testing.T) {
	cConn, sConn := net.Pipe()
	dc := core.NewDatacenter()
	srv := NewServer(dc)

	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sConn) }()

	client, err := NewClient(cConn)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(sampleUploads()[0]); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
	if len(dc.Uploads("mc-a")) != 1 {
		t.Fatal("upload not delivered")
	}
}

func TestServerRejectsBadMagic(t *testing.T) {
	cConn, sConn := net.Pipe()
	srv := NewServer(core.NewDatacenter())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sConn) }()
	go func() {
		cConn.Write([]byte{0, 1, 2, 3, 4, 5})
		cConn.Close()
	}()
	if err := <-done; err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestServerRejectsOversizedRecord(t *testing.T) {
	cConn, sConn := net.Pipe()
	srv := NewServer(core.NewDatacenter())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sConn) }()
	go func() {
		// Valid handshake, then a record claiming 1 GB.
		hdr := []byte{0xFF, 0x00, 0xFF, 0x05, 0x00, 0x01}
		cConn.Write(hdr)
		cConn.Write([]byte{KindUpload, 0x40, 0x00, 0x00, 0x00})
		cConn.Close()
	}()
	if err := <-done; err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestServerRejectsUnsupportedVersion(t *testing.T) {
	// Version above MaxVersion fails in ReadHeader.
	cConn, sConn := net.Pipe()
	srv := NewServer(core.NewDatacenter())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sConn) }()
	go func() {
		cConn.Write([]byte{0xFF, 0x00, 0xFF, 0x05, 0x00, 0x63}) // version 99
		cConn.Close()
	}()
	if err := <-done; !errors.Is(err, ErrVersion) {
		t.Fatalf("version 99 error = %v, want ErrVersion", err)
	}

	// Version 2 is valid on the wire but not served by the legacy
	// server (the fleet controller owns v2 sessions).
	cConn2, sConn2 := net.Pipe()
	go func() { done <- srv.ServeConn(sConn2) }()
	go func() {
		WriteHeader(cConn2, Version2)
		cConn2.Close()
	}()
	if err := <-done; !errors.Is(err, ErrVersion) {
		t.Fatalf("v2 on legacy server error = %v, want ErrVersion", err)
	}
}

func TestReadHeaderRejectsVersionZero(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeader(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadHeader(&buf); !errors.Is(err, ErrVersion) {
		t.Fatalf("version 0 error = %v, want ErrVersion", err)
	}
}

func TestServerRejectsTruncatedStream(t *testing.T) {
	cConn, sConn := net.Pipe()
	srv := NewServer(core.NewDatacenter())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sConn) }()
	go func() {
		// Valid handshake, then a record whose 100-byte payload is
		// cut off after 10 bytes.
		WriteHeader(cConn, Version1)
		cConn.Write([]byte{KindUpload, 0x00, 0x00, 0x00, 0x64})
		cConn.Write(make([]byte, 10))
		cConn.Close()
	}()
	if err := <-done; err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestServerRejectsTruncatedHandshake(t *testing.T) {
	cConn, sConn := net.Pipe()
	srv := NewServer(core.NewDatacenter())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sConn) }()
	go func() {
		cConn.Write([]byte{0xFF, 0x00})
		cConn.Close()
	}()
	if err := <-done; err == nil {
		t.Fatal("truncated handshake accepted")
	}
}

func TestServerRejectsUnknownKind(t *testing.T) {
	cConn, sConn := net.Pipe()
	srv := NewServer(core.NewDatacenter())
	done := make(chan error, 1)
	go func() { done <- srv.ServeConn(sConn) }()
	go func() {
		WriteHeader(cConn, Version1)
		WriteRecord(cConn, 0x7F, struct{}{})
		cConn.Close()
	}()
	if err := <-done; err == nil {
		t.Fatal("unknown record kind accepted")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := UploadRecord{MCName: "rt", EventID: 9, Start: 4, End: 8, Bits: 321, Final: true}
	if err := WriteRecord(&buf, KindUpload, want); err != nil {
		t.Fatal(err)
	}
	kind, body, err := ReadRecord(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindUpload {
		t.Fatalf("kind = %d, want %d", kind, KindUpload)
	}
	var got UploadRecord
	if err := DecodeRecord(body, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip changed record: %+v vs %+v", got, want)
	}
	// A clean end of stream at a record boundary is io.EOF.
	if _, _, err := ReadRecord(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream error = %v, want io.EOF", err)
	}
}

func TestReadRecordTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, KindUpload, UploadRecord{MCName: "x"}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Cut mid-payload: io.ErrUnexpectedEOF, not a clean EOF.
	if _, _, err := ReadRecord(bytes.NewReader(whole[:len(whole)-2])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-payload truncation error = %v, want io.ErrUnexpectedEOF", err)
	}
	// Cut mid-header: also not a clean EOF.
	if _, _, err := ReadRecord(bytes.NewReader(whole[:3])); errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatal("mid-header truncation reported a clean EOF")
	}
}

// TestReadRecordDeadlineProgress pins the liveness semantics: the
// timeout bounds silence between arrivals, not total record transfer
// time. A record trickling in slowly must survive as long as each gap
// stays under the window; a silent peer must still time out.
func TestReadRecordDeadlineProgress(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRecord(&buf, KindUpload, UploadRecord{MCName: "slow", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go func() {
		// Trickle the record in 4 parts with 30ms gaps: total transfer
		// ~90ms, well past the 60ms silence window below.
		step := len(whole)/4 + 1
		for lo := 0; lo < len(whole); lo += step {
			hi := lo + step
			if hi > len(whole) {
				hi = len(whole)
			}
			cConn.Write(whole[lo:hi])
			time.Sleep(30 * time.Millisecond)
		}
	}()
	kind, body, err := ReadRecordDeadline(sConn, 60*time.Millisecond)
	if err != nil {
		t.Fatalf("trickled record timed out despite steady progress: %v", err)
	}
	var rec UploadRecord
	if kind != KindUpload || DecodeRecord(body, &rec) != nil || rec.MCName != "slow" {
		t.Fatalf("trickled record mangled: kind %d, rec %+v", kind, rec)
	}

	// Silence still times out.
	if _, _, err := ReadRecordDeadline(sConn, 50*time.Millisecond); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("silent peer error = %v, want os.ErrDeadlineExceeded", err)
	}
}

func TestUploadRecordConversion(t *testing.T) {
	u := core.Upload{MCName: "x", EventID: 7, Start: 1, End: 9, Bits: 55, Final: true}
	back := ToRecord(u).ToUpload()
	if back.MCName != u.MCName || back.EventID != u.EventID || back.Start != u.Start ||
		back.End != u.End || back.Bits != u.Bits || back.Final != u.Final {
		t.Fatalf("round trip changed upload: %+v vs %+v", back, u)
	}
}
