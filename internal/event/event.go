// Package event turns per-frame binary classifications into event
// detections, implementing §3.5 of the paper: K-of-N vote smoothing to
// mask spurious misclassifications, and a transition detector that
// assigns each contiguous positive segment a monotonically increasing
// event ID.
package event

import "fmt"

// DefaultN and DefaultK are the paper's smoothing parameters: a frame
// is a detection if at least 2 of the 5 frames in its window are
// positive — "fairly aggressive false negative mitigation at the
// expense of potential false positives".
const (
	DefaultN = 5
	DefaultK = 2
)

// SmoothKofN applies K-of-N voting to a full label sequence: output
// frame i is positive when at least k of the n frames in the window
// centred on i are positive. Windows are clipped at sequence edges.
func SmoothKofN(raw []bool, n, k int) []bool {
	if n <= 0 || k <= 0 || k > n {
		panic(fmt.Sprintf("event: bad smoothing params n=%d k=%d", n, k))
	}
	half := n / 2
	out := make([]bool, len(raw))
	for i := range raw {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(raw) {
			hi = len(raw)
		}
		votes := 0
		for j := lo; j < hi; j++ {
			if raw[j] {
				votes++
			}
		}
		out[i] = votes >= k
	}
	return out
}

// Smoother is the streaming form of SmoothKofN. Frames are pushed in
// order; once a frame's full window is available the smoother emits
// its decision, so output lags input by N/2 frames. Flush drains the
// tail (whose windows are clipped on the right, matching SmoothKofN).
//
// Push and Flush are allocation-free in the steady state: raw labels
// live in a fixed ring sized by the window, and the returned decision
// slice is reused by the next Push/Flush — consume it before pushing
// the next frame.
type Smoother struct {
	n, k    int
	win     []bool // label ring; frame f lives at win[f%len(win)]
	pushed  int    // total frames pushed
	emitted int    // next frame index to decide
	dec     []Decision
}

// NewSmoother constructs a streaming K-of-N smoother.
func NewSmoother(n, k int) *Smoother {
	if n <= 0 || k <= 0 || k > n {
		panic(fmt.Sprintf("event: bad smoothing params n=%d k=%d", n, k))
	}
	// At the moment Push stores frame p, every frame back to
	// emitted-half ≤ p-2·half is still inside a future window, so at
	// most 2·half+1 ≤ n+1 labels are live at once.
	return &Smoother{n: n, k: k, win: make([]bool, n+1)}
}

// Decision is one smoothed output frame.
type Decision struct {
	// Frame is the input frame index the decision applies to.
	Frame int
	// Positive is the smoothed label.
	Positive bool
}

// Push adds the next frame's raw classification and returns any
// decisions that became final. The returned slice is reused by the
// next Push/Flush.
func (s *Smoother) Push(raw bool) []Decision {
	s.win[s.pushed%len(s.win)] = raw
	s.pushed++
	return s.drain(false)
}

// Flush returns the remaining decisions for the tail frames. The
// returned slice is reused by the next Push/Flush.
func (s *Smoother) Flush() []Decision {
	return s.drain(true)
}

func (s *Smoother) drain(flush bool) []Decision {
	half := s.n / 2
	s.dec = s.dec[:0]
	for s.emitted < s.pushed {
		frame := s.emitted
		if !flush && frame+half >= s.pushed {
			break
		}
		lo := frame - half
		if lo < 0 {
			lo = 0
		}
		hi := frame + half + 1
		if hi > s.pushed {
			hi = s.pushed
		}
		votes := 0
		for j := lo; j < hi; j++ {
			if s.win[j%len(s.win)] {
				votes++
			}
		}
		s.dec = append(s.dec, Decision{Frame: frame, Positive: votes >= s.k})
		s.emitted++
	}
	return s.dec
}

// Detector assigns monotonically increasing event IDs to contiguous
// runs of positive (smoothed) frames. IDs start at 1; 0 means "not in
// an event".
type Detector struct {
	nextID  uint64
	current uint64
}

// NewDetector constructs a transition detector.
func NewDetector() *Detector { return &Detector{nextID: 1} }

// Observe consumes the next smoothed frame label and returns the event
// ID the frame belongs to (0 if none) and whether this frame starts a
// new event.
func (d *Detector) Observe(positive bool) (id uint64, started bool) {
	if !positive {
		d.current = 0
		return 0, false
	}
	if d.current == 0 {
		d.current = d.nextID
		d.nextID++
		return d.current, true
	}
	return d.current, false
}

// EventsSeen returns the number of events started so far.
func (d *Detector) EventsSeen() uint64 { return d.nextID - 1 }
