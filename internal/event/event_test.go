package event

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSmoothKofNMasksSpuriousNegatives(t *testing.T) {
	// A single dropped frame inside an event is recovered by 2-of-5
	// voting.
	raw := []bool{true, true, false, true, true}
	out := SmoothKofN(raw, 5, 2)
	for i, v := range out {
		if !v {
			t.Fatalf("frame %d not recovered: %v", i, out)
		}
	}
}

func TestSmoothKofNSingleSpikeSpreads(t *testing.T) {
	// K=2 requires at least two votes, so one isolated positive frame
	// is suppressed everywhere.
	raw := []bool{false, false, true, false, false, false}
	out := SmoothKofN(raw, 5, 2)
	for i, v := range out {
		if v {
			t.Fatalf("isolated spike survived at %d: %v", i, out)
		}
	}
}

func TestSmoothKofNEdges(t *testing.T) {
	// Clipped windows at the edges still vote correctly.
	raw := []bool{true, true, false, false, false, false, true, true}
	out := SmoothKofN(raw, 5, 2)
	if !out[0] || !out[7] {
		t.Fatalf("edge frames lost: %v", out)
	}
}

func TestSmoothKofNBadParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k>n did not panic")
		}
	}()
	SmoothKofN([]bool{true}, 3, 4)
}

func TestStreamingMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(64)
		raw := make([]bool, n)
		for i := range raw {
			raw[i] = rng.Float32() < 0.4
		}
		want := SmoothKofN(raw, 5, 2)

		s := NewSmoother(5, 2)
		got := make([]bool, 0, n)
		for _, v := range raw {
			for _, d := range s.Push(v) {
				if d.Frame != len(got) {
					return false
				}
				got = append(got, d.Positive)
			}
		}
		for _, d := range s.Flush() {
			if d.Frame != len(got) {
				return false
			}
			got = append(got, d.Positive)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamingLag(t *testing.T) {
	s := NewSmoother(5, 2)
	// With N=5 the smoother cannot decide frame 0 until frame 2 is
	// pushed.
	if ds := s.Push(true); len(ds) != 0 {
		t.Fatalf("decided too early: %v", ds)
	}
	if ds := s.Push(true); len(ds) != 0 {
		t.Fatalf("decided too early: %v", ds)
	}
	ds := s.Push(true)
	if len(ds) != 1 || ds[0].Frame != 0 || !ds[0].Positive {
		t.Fatalf("expected decision for frame 0, got %v", ds)
	}
}

func TestDetectorAssignsMonotonicIDs(t *testing.T) {
	d := NewDetector()
	seq := []bool{false, true, true, false, true, false, false, true}
	var ids []uint64
	for _, p := range seq {
		id, _ := d.Observe(p)
		ids = append(ids, id)
	}
	want := []uint64{0, 1, 1, 0, 2, 0, 0, 3}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if d.EventsSeen() != 3 {
		t.Fatalf("EventsSeen = %d, want 3", d.EventsSeen())
	}
}

func TestDetectorStartFlag(t *testing.T) {
	d := NewDetector()
	_, started := d.Observe(true)
	if !started {
		t.Fatal("first positive frame should start an event")
	}
	_, started = d.Observe(true)
	if started {
		t.Fatal("second frame of the same event should not start one")
	}
	d.Observe(false)
	_, started = d.Observe(true)
	if !started {
		t.Fatal("positive after a gap should start a new event")
	}
}

// TestSmootherZeroAlloc pins steady-state Push at zero allocations:
// the vote ring and the decision buffer are fixed at construction and
// reused, so arbitrarily long streams hold constant memory.
func TestSmootherZeroAlloc(t *testing.T) {
	s := NewSmoother(5, 2)
	// Warm past the smoothing lag so the decision buffer reaches its
	// steady-state capacity.
	for i := 0; i < 10; i++ {
		s.Push(i%3 == 0)
	}
	i := 0
	if n := testing.AllocsPerRun(100, func() { s.Push(i%3 == 0); i++ }); n != 0 {
		t.Fatalf("Push allocates %v objects per frame, want 0", n)
	}
}
