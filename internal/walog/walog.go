// Package walog is an append-only, CRC-framed write-ahead log with
// snapshot compaction — the durable state store under each controller
// shard (internal/fleet) and, by design, under anything else that
// needs crash-recoverable state without a database dependency.
//
// A log is a directory holding at most three kinds of file:
//
//	snapshot      header | one framed record (the compacted state)
//	wal-<gen>     header | stream of framed records (ops since snapshot)
//	snapshot.tmp  transient, only during WriteSnapshot
//
// Framing reuses internal/transport's checksummed-record idiom:
//
//	header: uint32 magic | uint16 version | uint8 ftype | uint8 pad |
//	        uint64 dirID | uint64 gen
//	record: uint8 kind | uint32 length | uint32 crc32(payload) | payload
//
// The per-record CRC turns torn or damaged bytes into a typed
// ErrCorrupt instead of a silent desync, and the reader never trusts
// the length prefix for allocation: payloads grow in bounded chunks as
// bytes actually arrive, so a hostile or damaged prefix costs one
// chunk, not MaxRecordBytes.
//
// Crash safety rests on two rules. First, appends are plain writes —
// a record handed to the OS survives any process crash (SIGKILL
// included); Sync is available when a caller must also survive machine
// power loss. Second, snapshots are generation-fenced: WriteSnapshot
// creates the next generation's empty wal file, atomically renames the
// new snapshot (which names that generation) into place, and only then
// deletes the old wal. Open replays exactly the wal file named by the
// surviving snapshot and discards every other generation, so a crash
// anywhere inside WriteSnapshot can neither lose acknowledged records
// nor replay pre-snapshot records on top of the new snapshot. A
// partially written final record — the torn tail of a crashed append —
// is truncated away on reopen; everything before it replays.
package walog

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// magic identifies a walog file (either type, see ftype).
const magic = 0xFFA10C01

// formatVersion is the on-disk layout revision.
const formatVersion = 1

// File types, stored in the header's ftype byte.
const (
	typeWAL      = 1
	typeSnapshot = 2
)

// MaxRecordBytes bounds a single record payload, keeping a damaged or
// hostile length prefix from forcing unbounded allocation.
const MaxRecordBytes = 16 << 20

// readChunk bounds how much ReadRecord allocates ahead of the bytes
// actually arriving.
const readChunk = 64 << 10

// headerLen is the file header: magic + version + ftype + pad +
// dirID + gen.
const headerLen = 24

// recHeaderLen is the record frame header: kind + length + crc32.
const recHeaderLen = 9

// ErrCorrupt is wrapped by read errors caused by on-disk damage — a
// bad magic, a length prefix beyond the record limit, or a payload
// failing its CRC. Open treats a corrupt record inside the wal as the
// torn tail (truncates and recovers); a corrupt snapshot or header is
// surfaced, because silently dropping a snapshot would lose state.
var ErrCorrupt = errors.New("walog: corrupt record")

// Record is one replayed log entry: an opaque kind byte and payload,
// both owned by the caller after Open.
type Record struct {
	Kind    uint8
	Payload []byte
}

// Log is an open write-ahead log directory. Append/WriteSnapshot/Sync
// must be serialized by the caller (the fleet shard holds its mutex);
// the accessors are read-only after Open.
type Log struct {
	dir string
	id  uint64
	gen uint64

	f       *os.File // active wal-<gen>
	size    int64    // bytes written to f, header included
	pending int      // records appended (or replayed) since last snapshot

	snapshot  []byte   // snapshot payload loaded at Open, nil if none
	records   []Record // wal records replayed at Open
	tornBytes int64    // bytes truncated from the wal tail at Open
	snapSize  int64    // snapshot file size at Open
}

// Open opens (creating if necessary) the log directory, loads the
// surviving snapshot, replays the active wal generation — truncating a
// torn tail — and deletes stale generations left by an interrupted
// WriteSnapshot.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir}

	snapPath := filepath.Join(dir, "snapshot")
	data, err := os.ReadFile(snapPath)
	switch {
	case err == nil:
		id, gen, payload, err := parseSnapshot(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", snapPath, err)
		}
		l.id, l.gen, l.snapshot = id, gen, payload
		l.snapSize = int64(len(data))
	case errors.Is(err, os.ErrNotExist):
		// No snapshot: generation 0, identity comes from an existing
		// wal-0 or is minted fresh.
	default:
		return nil, err
	}
	// A snapshot.tmp is an interrupted WriteSnapshot that never reached
	// the rename; its generation was never committed.
	_ = os.Remove(filepath.Join(dir, "snapshot.tmp"))

	if err := l.openWAL(); err != nil {
		return nil, err
	}
	// Stale generations: wals before the snapshot's (their records are
	// inside it) or after it (created by an interrupted WriteSnapshot,
	// never appended to).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || name == walName(l.gen) {
			continue
		}
		if _, perr := strconv.ParseUint(name[len("wal-"):], 10, 64); perr == nil {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	return l, nil
}

func walName(gen uint64) string { return "wal-" + strconv.FormatUint(gen, 10) }

// openWAL opens (creating if absent or unusably short) the active
// generation's wal and replays its records, truncating the torn tail.
func (l *Log) openWAL() error {
	path := filepath.Join(l.dir, walName(l.gen))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if info.Size() < headerLen {
		// Empty or torn during creation: (re)write the header. Any
		// partial header bytes belong to no committed record.
		if l.id == 0 {
			l.id = newDirID()
		}
		if err := writeFileHeader(f, typeWAL, l.id, l.gen); err != nil {
			f.Close()
			return err
		}
		// WriteAt leaves the offset untouched; appends go after the
		// header, and a torn partial header is gone (truncate).
		if err := f.Truncate(headerLen); err != nil {
			f.Close()
			return err
		}
		if _, err := f.Seek(headerLen, io.SeekStart); err != nil {
			f.Close()
			return err
		}
		l.f, l.size = f, headerLen
		return nil
	}
	var hdr [headerLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return err
	}
	id, gen, err := parseFileHeader(hdr, typeWAL)
	if err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	if l.snapshot != nil && id != l.id {
		f.Close()
		return fmt.Errorf("%s: %w: wal dirID %#x does not match snapshot dirID %#x", path, ErrCorrupt, id, l.id)
	}
	if gen != l.gen {
		f.Close()
		return fmt.Errorf("%s: %w: wal generation %d in file named for %d", path, ErrCorrupt, gen, l.gen)
	}
	l.id = id

	// Replay, remembering the end of the last whole record so the torn
	// tail — truncation mid-record, a failed CRC, an oversize length
	// claim — can be cut off. Bytes before the damage all replay.
	if _, err := f.Seek(headerLen, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	r := &offsetReader{f: f}
	good := int64(headerLen)
	for {
		kind, payload, err := ReadRecord(r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				break // clean boundary
			}
			l.tornBytes = info.Size() - good
			if terr := f.Truncate(good); terr != nil {
				f.Close()
				return terr
			}
			break
		}
		l.records = append(l.records, Record{Kind: kind, Payload: payload})
		good = headerLen + r.off
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.f, l.size = f, good
	l.pending = len(l.records)
	return nil
}

// ID returns the directory's stable identity, minted when the
// directory was first created and preserved across snapshots.
func (l *Log) ID() uint64 { return l.id }

// Gen returns the active wal generation.
func (l *Log) Gen() uint64 { return l.gen }

// Dir returns the directory path.
func (l *Log) Dir() string { return l.dir }

// Snapshot returns the snapshot payload loaded at Open, nil when the
// directory had none. Replay order is Snapshot first, then Records.
func (l *Log) Snapshot() []byte { return l.snapshot }

// Records returns the wal records replayed at Open, in append order.
func (l *Log) Records() []Record { return l.records }

// TornBytes returns how many trailing bytes Open truncated from the
// wal (zero for a cleanly closed log).
func (l *Log) TornBytes() int64 { return l.tornBytes }

// SnapshotSize returns the snapshot file's size at Open (zero when the
// directory had none).
func (l *Log) SnapshotSize() int64 { return l.snapSize }

// Pending returns the records accumulated in the active wal since the
// last snapshot (replayed records included) — the compaction signal.
func (l *Log) Pending() int { return l.pending }

// Size returns the active wal's size in bytes, header included.
func (l *Log) Size() int64 { return l.size }

// Append frames one record and hands it to the OS. The write is
// buffered only by the page cache: it survives a process crash as
// written; call Sync to also survive machine power loss.
func (l *Log) Append(kind uint8, payload []byte) error {
	if l.f == nil {
		return os.ErrClosed
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("walog: record of %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	buf := make([]byte, recHeaderLen+len(payload))
	buf[0] = kind
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[5:9], crc32.ChecksumIEEE(payload))
	copy(buf[recHeaderLen:], payload)
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.size += int64(len(buf))
	l.pending++
	return nil
}

// Sync flushes the active wal to stable storage.
func (l *Log) Sync() error {
	if l.f == nil {
		return os.ErrClosed
	}
	return l.f.Sync()
}

// WriteSnapshot durably replaces the log's state with payload and
// resets the wal. The sequence is crash-safe at every step: the next
// generation's empty wal is created and synced first, then the
// snapshot naming that generation is written, synced, and atomically
// renamed into place, and only then is the old generation deleted.
// Open resolves any intermediate state to either the old snapshot+wal
// or the new ones, never a mixture.
func (l *Log) WriteSnapshot(payload []byte) error {
	if l.f == nil {
		return os.ErrClosed
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("walog: snapshot of %d bytes exceeds limit %d", len(payload), MaxRecordBytes)
	}
	next := l.gen + 1
	nf, err := os.OpenFile(filepath.Join(l.dir, walName(next)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := writeFileHeader(nf, typeWAL, l.id, next); err != nil {
		nf.Close()
		return err
	}
	if _, err := nf.Seek(headerLen, io.SeekStart); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return err
	}

	tmp := filepath.Join(l.dir, "snapshot.tmp")
	sf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		nf.Close()
		return err
	}
	werr := writeFileHeader(sf, typeSnapshot, l.id, next)
	if werr == nil {
		_, werr = sf.Seek(headerLen, io.SeekStart)
	}
	if werr == nil {
		var rhdr [recHeaderLen]byte
		rhdr[0] = typeSnapshot
		binary.BigEndian.PutUint32(rhdr[1:5], uint32(len(payload)))
		binary.BigEndian.PutUint32(rhdr[5:9], crc32.ChecksumIEEE(payload))
		if _, err := sf.Write(rhdr[:]); err != nil {
			werr = err
		} else if _, err := sf.Write(payload); err != nil {
			werr = err
		}
	}
	if werr == nil {
		werr = sf.Sync()
	}
	if cerr := sf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		nf.Close()
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, "snapshot")); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	syncDir(l.dir)

	// The new snapshot+wal pair is committed; the old generation is now
	// garbage (Open would delete it too if this removal is lost).
	old := l.f
	oldGen := l.gen
	l.f, l.gen = nf, next
	l.size = headerLen
	l.pending = 0
	l.snapshot = payload
	l.snapSize = headerLen + recHeaderLen + int64(len(payload))
	l.records, l.tornBytes = nil, 0
	old.Close()
	_ = os.Remove(filepath.Join(l.dir, walName(oldGen)))
	return nil
}

// Close syncs and closes the active wal. The directory remains valid
// for a later Open.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// Abandon closes the active wal without syncing — test support for
// simulating a process crash: whatever the OS holds is what recovery
// sees.
func (l *Log) Abandon() {
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
}

// ReadRecord reads one framed record from r, returning its kind and
// payload. A clean end of stream at a record boundary returns io.EOF;
// truncation mid-record returns io.ErrUnexpectedEOF; a length prefix
// beyond the limit or a payload failing its CRC returns an error
// wrapping ErrCorrupt. The payload buffer grows in bounded chunks as
// bytes arrive, never from the length prefix alone.
func ReadRecord(r io.Reader) (uint8, []byte, error) {
	var rhdr [recHeaderLen]byte
	if _, err := io.ReadFull(r, rhdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, err
	}
	size := binary.BigEndian.Uint32(rhdr[1:5])
	sum := binary.BigEndian.Uint32(rhdr[5:9])
	if size > MaxRecordBytes {
		return 0, nil, fmt.Errorf("walog: %w: length prefix claims %d bytes (limit %d)", ErrCorrupt, size, MaxRecordBytes)
	}
	cap0 := int(size)
	if cap0 > readChunk {
		cap0 = readChunk
	}
	body := make([]byte, 0, cap0)
	for len(body) < int(size) {
		n := int(size) - len(body)
		if n > readChunk {
			n = readChunk
		}
		off := len(body)
		body = append(body, zeroChunk[:n]...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
	}
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, fmt.Errorf("walog: %w: payload checksum mismatch (kind %d, %d bytes)", ErrCorrupt, rhdr[0], size)
	}
	return rhdr[0], body, nil
}

// zeroChunk is the shared zero source ReadRecord grows buffers from.
var zeroChunk [readChunk]byte

// ParseSnapshot validates a snapshot file image and returns its dirID,
// generation, and payload. Exported for fuzzing; Open uses it
// internally.
func ParseSnapshot(data []byte) (id, gen uint64, payload []byte, err error) {
	return parseSnapshot(data)
}

func parseSnapshot(data []byte) (id, gen uint64, payload []byte, err error) {
	if len(data) < headerLen {
		return 0, 0, nil, fmt.Errorf("%w: snapshot of %d bytes, header needs %d", ErrCorrupt, len(data), headerLen)
	}
	var hdr [headerLen]byte
	copy(hdr[:], data)
	id, gen, err = parseFileHeader(hdr, typeSnapshot)
	if err != nil {
		return 0, 0, nil, err
	}
	kind, payload, err := ReadRecord(bytesReader(data[headerLen:]))
	if err != nil {
		return 0, 0, nil, fmt.Errorf("%w: snapshot record: %v", ErrCorrupt, err)
	}
	if kind != typeSnapshot {
		return 0, 0, nil, fmt.Errorf("%w: snapshot record kind %d", ErrCorrupt, kind)
	}
	return id, gen, payload, nil
}

func writeFileHeader(f *os.File, ftype uint8, id, gen uint64) error {
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], magic)
	binary.BigEndian.PutUint16(hdr[4:6], formatVersion)
	hdr[6] = ftype
	binary.BigEndian.PutUint64(hdr[8:16], id)
	binary.BigEndian.PutUint64(hdr[16:24], gen)
	_, err := f.WriteAt(hdr[:], 0)
	return err
}

func parseFileHeader(hdr [headerLen]byte, wantType uint8) (id, gen uint64, err error) {
	if binary.BigEndian.Uint32(hdr[0:4]) != magic {
		return 0, 0, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, binary.BigEndian.Uint32(hdr[0:4]))
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != formatVersion {
		return 0, 0, fmt.Errorf("walog: unsupported format version %d", v)
	}
	if hdr[6] != wantType {
		return 0, 0, fmt.Errorf("%w: file type %d, want %d", ErrCorrupt, hdr[6], wantType)
	}
	return binary.BigEndian.Uint64(hdr[8:16]), binary.BigEndian.Uint64(hdr[16:24]), nil
}

// newDirID mints a random non-zero directory identity.
func newDirID() uint64 {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			panic("walog: reading random identity: " + err.Error())
		}
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// syncDir best-effort fsyncs a directory so a rename in it is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// ListDirs returns the walog subdirectories under root matching the
// "prefixNNNN" naming convention, sorted by index, as (index, path)
// pairs — the discovery step of multi-log recovery (one log per
// controller shard).
func ListDirs(root, prefix string) (idx []int, paths []string, err error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	type dirEnt struct {
		i int
		p string
	}
	var dirs []dirEnt
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		i, perr := strconv.Atoi(strings.TrimPrefix(e.Name(), prefix))
		if perr != nil || i < 0 {
			continue
		}
		dirs = append(dirs, dirEnt{i: i, p: filepath.Join(root, e.Name())})
	}
	sort.Slice(dirs, func(a, b int) bool { return dirs[a].i < dirs[b].i })
	for _, d := range dirs {
		idx = append(idx, d.i)
		paths = append(paths, d.p)
	}
	return idx, paths, nil
}

// offsetReader reads from an *os.File sequentially while tracking the
// offset consumed — how Open knows where the last whole record ended.
type offsetReader struct {
	f   *os.File
	off int64
}

func (r *offsetReader) Read(p []byte) (int, error) {
	n, err := r.f.Read(p)
	r.off += int64(n)
	return n, err
}

// bytesReader avoids importing bytes for one call site.
type sliceReader struct {
	data []byte
	off  int
}

func bytesReader(b []byte) *sliceReader { return &sliceReader{data: b} }

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
