package walog

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frameRecord frames one record the way Append does.
func frameRecord(kind uint8, payload []byte) []byte {
	buf := make([]byte, recHeaderLen+len(payload))
	buf[0] = kind
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[5:9], crc32.ChecksumIEEE(payload))
	copy(buf[recHeaderLen:], payload)
	return buf
}

func fileHeaderBytes(ftype uint8, id, gen uint64) []byte {
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], magic)
	binary.BigEndian.PutUint16(hdr[4:6], formatVersion)
	hdr[6] = ftype
	binary.BigEndian.PutUint64(hdr[8:16], id)
	binary.BigEndian.PutUint64(hdr[16:24], gen)
	return hdr[:]
}

func FuzzWALReadRecord(f *testing.F) {
	whole := frameRecord(3, []byte("wal-fuzz-payload"))
	f.Add(whole)
	f.Add(whole[:len(whole)-2]) // torn payload
	f.Add(whole[:4])            // torn header
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)-1] ^= 0x40 // payload corruption
	f.Add(flipped)
	crcFlip := append([]byte(nil), whole...)
	crcFlip[6] ^= 0x80 // crc field corruption
	f.Add(crcFlip)
	huge := []byte{1, 0x7F, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0} // 2 GB length claim
	f.Add(huge)
	maxed := []byte{1, 0x01, 0x00, 0x00, 0x00, 0, 0, 0, 0, 'x'} // in-limit claim, short body
	f.Add(maxed)
	f.Add(frameRecord(0, nil)) // empty payload
	f.Add(append(append([]byte(nil), whole...), whole...))
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body, err := ReadRecord(bytesReader(data))
		if err != nil {
			// Errors must be diagnosable, never a desync: damage and
			// oversize claims wrap ErrCorrupt; truncation is an EOF
			// variant. Nothing here may panic or over-allocate.
			return
		}
		// On success the framing must be internally consistent.
		if len(body) > len(data)-recHeaderLen {
			t.Fatalf("body of %d bytes from %d input bytes", len(body), len(data))
		}
		if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(data[5:9]) {
			t.Fatalf("accepted record whose CRC does not match")
		}
		if kind != data[0] {
			t.Fatalf("kind %d from input byte %d", kind, data[0])
		}
	})
}

func FuzzWALParseSnapshot(f *testing.F) {
	good := append(fileHeaderBytes(typeSnapshot, 0x1234, 2), frameRecord(typeSnapshot, []byte("snapshot-state"))...)
	f.Add(good)
	f.Add(good[:headerLen])   // header only, no record
	f.Add(good[:len(good)-3]) // torn record
	f.Add(good[:5])           // torn header
	f.Add([]byte{})           // empty file
	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xFF
	f.Add(badMagic)
	walType := append(fileHeaderBytes(typeWAL, 0x1234, 2), frameRecord(typeSnapshot, []byte("x"))...)
	f.Add(walType) // wrong file type
	f.Fuzz(func(t *testing.T, data []byte) {
		id, gen, payload, err := ParseSnapshot(data)
		if err != nil {
			return
		}
		if len(payload) > len(data) {
			t.Fatalf("payload of %d bytes from %d input bytes", len(payload), len(data))
		}
		_ = id
		_ = gen
	})
}

// FuzzWALOpen drops arbitrary bytes behind a valid wal prefix and
// checks Open always recovers the intact records, truncates the rest,
// and leaves a log that accepts appends — the torn-tail contract under
// adversarial tails.
func FuzzWALOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(frameRecord(7, []byte("a whole third record")))
	f.Add(frameRecord(7, []byte("torn"))[:6])
	f.Add([]byte{9, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}) // oversize claim
	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		l, err := Open(dir)
		if err != nil {
			t.Fatalf("fresh Open: %v", err)
		}
		if err := l.Append(1, []byte("first")); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(2, []byte("second")); err != nil {
			t.Fatal(err)
		}
		gen := l.Gen()
		l.Abandon()
		wf, err := os.OpenFile(filepath.Join(dir, walName(gen)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		wf.Write(tail)
		wf.Close()

		l2, err := Open(dir)
		if err != nil {
			t.Fatalf("Open after tail injection: %v", err)
		}
		recs := l2.Records()
		if len(recs) < 2 {
			t.Fatalf("lost intact records: %d replayed", len(recs))
		}
		if recs[0].Kind != 1 || !bytes.Equal(recs[0].Payload, []byte("first")) ||
			recs[1].Kind != 2 || !bytes.Equal(recs[1].Payload, []byte("second")) {
			t.Fatalf("intact records damaged: %v", recs[:2])
		}
		if err := l2.Append(3, []byte("post")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		l2.Close()
		l3, err := Open(dir)
		if err != nil {
			t.Fatalf("third Open: %v", err)
		}
		last := l3.Records()[len(l3.Records())-1]
		if last.Kind != 3 || !bytes.Equal(last.Payload, []byte("post")) {
			t.Fatalf("post-recovery append lost: %v", last)
		}
		l3.Close()
	})
}
