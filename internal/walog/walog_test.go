package walog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func payloadN(i int) []byte {
	return []byte(fmt.Sprintf("payload-%04d", i))
}

func mustOpen(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	if l.Snapshot() != nil || len(l.Records()) != 0 {
		t.Fatalf("fresh log has state: snap=%v records=%d", l.Snapshot(), len(l.Records()))
	}
	id := l.ID()
	if id == 0 {
		t.Fatal("fresh log has zero dirID")
	}
	for i := 0; i < 50; i++ {
		if err := l.Append(uint8(i%7+1), payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir)
	if l2.ID() != id {
		t.Fatalf("dirID changed across reopen: %#x -> %#x", id, l2.ID())
	}
	recs := l2.Records()
	if len(recs) != 50 {
		t.Fatalf("replayed %d records, want 50", len(recs))
	}
	for i, r := range recs {
		if r.Kind != uint8(i%7+1) || !bytes.Equal(r.Payload, payloadN(i)) {
			t.Fatalf("record %d = kind %d %q", i, r.Kind, r.Payload)
		}
	}
	if l2.TornBytes() != 0 {
		t.Fatalf("clean log reports %d torn bytes", l2.TornBytes())
	}
	// Appending after replay must extend, not clobber.
	if err := l2.Append(9, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3 := mustOpen(t, dir)
	if n := len(l3.Records()); n != 51 {
		t.Fatalf("replayed %d records after append-on-reopen, want 51", n)
	}
	l3.Close()
}

func TestTornTailTruncation(t *testing.T) {
	cases := []struct {
		name string
		tear func(path string, t *testing.T)
	}{
		{"partial header", func(path string, t *testing.T) {
			appendRaw(t, path, []byte{3, 0, 0}) // 3 of 9 header bytes
		}},
		{"partial payload", func(path string, t *testing.T) {
			var hdr [recHeaderLen]byte
			hdr[0] = 4
			binary.BigEndian.PutUint32(hdr[1:5], 100)
			binary.BigEndian.PutUint32(hdr[5:9], 0xdead)
			appendRaw(t, path, append(hdr[:], []byte("only a few bytes")...))
		}},
		{"bad crc", func(path string, t *testing.T) {
			body := []byte("damaged")
			var hdr [recHeaderLen]byte
			hdr[0] = 4
			binary.BigEndian.PutUint32(hdr[1:5], uint32(len(body)))
			binary.BigEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(body)^0xFF)
			appendRaw(t, path, append(hdr[:], body...))
		}},
		{"oversize length claim", func(path string, t *testing.T) {
			var hdr [recHeaderLen]byte
			hdr[0] = 4
			binary.BigEndian.PutUint32(hdr[1:5], MaxRecordBytes+1)
			appendRaw(t, path, hdr[:])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir)
			for i := 0; i < 10; i++ {
				if err := l.Append(1, payloadN(i)); err != nil {
					t.Fatal(err)
				}
			}
			gen := l.Gen()
			l.Abandon()
			tc.tear(filepath.Join(dir, walName(gen)), t)

			l2 := mustOpen(t, dir)
			if n := len(l2.Records()); n != 10 {
				t.Fatalf("replayed %d records, want the 10 whole ones", n)
			}
			if l2.TornBytes() == 0 {
				t.Fatal("torn tail not reported")
			}
			// The truncated log must accept appends and replay them.
			if err := l2.Append(2, []byte("after-tear")); err != nil {
				t.Fatal(err)
			}
			l2.Close()
			l3 := mustOpen(t, dir)
			if n := len(l3.Records()); n != 11 {
				t.Fatalf("replayed %d records after post-tear append, want 11", n)
			}
			if got := l3.Records()[10]; got.Kind != 2 || string(got.Payload) != "after-tear" {
				t.Fatalf("post-tear record = kind %d %q", got.Kind, got.Payload)
			}
			l3.Close()
		})
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	for i := 0; i < 20; i++ {
		if err := l.Append(1, payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Pending() != 20 {
		t.Fatalf("pending = %d, want 20", l.Pending())
	}
	if err := l.WriteSnapshot([]byte("state-at-20")); err != nil {
		t.Fatal(err)
	}
	if l.Pending() != 0 || l.Gen() != 1 {
		t.Fatalf("post-snapshot pending=%d gen=%d", l.Pending(), l.Gen())
	}
	for i := 20; i < 25; i++ {
		if err := l.Append(1, payloadN(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2 := mustOpen(t, dir)
	if string(l2.Snapshot()) != "state-at-20" {
		t.Fatalf("snapshot = %q", l2.Snapshot())
	}
	if n := len(l2.Records()); n != 5 {
		t.Fatalf("replayed %d wal records after snapshot, want 5", n)
	}
	if l2.Records()[0].Payload == nil || !bytes.Equal(l2.Records()[4].Payload, payloadN(24)) {
		t.Fatalf("wrong post-snapshot records: %v", l2.Records())
	}
	if l2.SnapshotSize() == 0 {
		t.Fatal("snapshot size not reported")
	}
	// The pre-snapshot generation must be gone.
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("wal-0 still present after compaction: %v", err)
	}
	l2.Close()
}

// TestCrashDuringSnapshot walks the on-disk states an interrupted
// WriteSnapshot can leave and checks Open resolves each to a
// consistent (old or new, never mixed) view.
func TestCrashDuringSnapshot(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		l := mustOpen(t, dir)
		for i := 0; i < 8; i++ {
			if err := l.Append(1, payloadN(i)); err != nil {
				t.Fatal(err)
			}
		}
		l.Abandon()
		return dir
	}

	t.Run("next wal created, snapshot not renamed", func(t *testing.T) {
		dir := build(t)
		// Simulate: wal-1 exists (empty), snapshot.tmp half-written,
		// rename never happened.
		nf, err := os.Create(filepath.Join(dir, walName(1)))
		if err != nil {
			t.Fatal(err)
		}
		writeFileHeader(nf, typeWAL, 123, 1)
		nf.Close()
		os.WriteFile(filepath.Join(dir, "snapshot.tmp"), []byte("partial"), 0o644)

		l := mustOpen(t, dir)
		if l.Snapshot() != nil || len(l.Records()) != 8 || l.Gen() != 0 {
			t.Fatalf("recovery chose wrong state: snap=%v records=%d gen=%d", l.Snapshot(), len(l.Records()), l.Gen())
		}
		if _, err := os.Stat(filepath.Join(dir, "snapshot.tmp")); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("snapshot.tmp not cleaned up")
		}
		if _, err := os.Stat(filepath.Join(dir, walName(1))); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("uncommitted wal-1 not cleaned up")
		}
		l.Close()
	})

	t.Run("snapshot renamed, old wal not deleted", func(t *testing.T) {
		dir := build(t)
		l := mustOpen(t, dir)
		if err := l.WriteSnapshot([]byte("committed")); err != nil {
			t.Fatal(err)
		}
		if err := l.Append(2, []byte("post-snap")); err != nil {
			t.Fatal(err)
		}
		id := l.ID()
		l.Abandon()
		// Resurrect the old generation as if its deletion was lost.
		of, err := os.Create(filepath.Join(dir, walName(0)))
		if err != nil {
			t.Fatal(err)
		}
		writeFileHeader(of, typeWAL, id, 0)
		var hdr [recHeaderLen]byte
		hdr[0] = 1
		body := []byte("stale-pre-snapshot-record")
		binary.BigEndian.PutUint32(hdr[1:5], uint32(len(body)))
		binary.BigEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(body))
		of.Write(append(hdr[:], body...))
		of.Close()

		l2 := mustOpen(t, dir)
		if string(l2.Snapshot()) != "committed" {
			t.Fatalf("snapshot = %q", l2.Snapshot())
		}
		// The stale generation's records must NOT replay on top of the
		// snapshot that already contains them.
		if n := len(l2.Records()); n != 1 || string(l2.Records()[0].Payload) != "post-snap" {
			t.Fatalf("replayed %d records %v, want just post-snap", n, l2.Records())
		}
		if _, err := os.Stat(filepath.Join(dir, walName(0))); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("stale wal-0 survived recovery")
		}
		l2.Close()
	})
}

func TestCorruptSnapshotSurfaces(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	l.Append(1, []byte("x"))
	if err := l.WriteSnapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, "snapshot")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with corrupt snapshot: %v, want ErrCorrupt", err)
	}
}

func TestDirIDMismatchSurfaces(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir)
	l.Append(1, []byte("x"))
	if err := l.WriteSnapshot([]byte("s")); err != nil {
		t.Fatal(err)
	}
	gen := l.Gen()
	l.Close()
	// Rewrite the wal header with a different identity — a foreign wal
	// file dropped into the directory.
	f, err := os.OpenFile(filepath.Join(dir, walName(gen)), os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeFileHeader(f, typeWAL, 0xBADBAD, gen)
	f.Close()
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with mismatched dirID: %v, want ErrCorrupt", err)
	}
}

func TestListDirs(t *testing.T) {
	root := t.TempDir()
	for _, n := range []string{"shard-0002", "shard-0000", "shard-0010", "other", "shard-x"} {
		os.MkdirAll(filepath.Join(root, n), 0o755)
	}
	os.WriteFile(filepath.Join(root, "shard-0001"), nil, 0o644) // a file, not a dir
	idx, paths, err := ListDirs(root, "shard-")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 || idx[0] != 0 || idx[1] != 2 || idx[2] != 10 {
		t.Fatalf("idx = %v", idx)
	}
	if filepath.Base(paths[2]) != "shard-0010" {
		t.Fatalf("paths = %v", paths)
	}
	if idx2, _, err := ListDirs(filepath.Join(root, "missing"), "shard-"); err != nil || idx2 != nil {
		t.Fatalf("missing root: idx=%v err=%v", idx2, err)
	}
}

// TestReadRecordBoundedAllocation pins the bounded-chunk contract: a
// huge length claim on a truncated stream must cost at most one chunk,
// and the reader never requests more than readChunk bytes per call.
func TestReadRecordBoundedAllocation(t *testing.T) {
	hdr := []byte{1, 0x00, 0xF0, 0x00, 0x00, 0, 0, 0, 0} // claims ~15 MB
	input := append(hdr, make([]byte, 32)...)
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := ReadRecord(bytesReader(input)); err == nil {
			t.Fatal("truncated 15 MB claim accepted")
		}
	})
	if allocs > 16 {
		t.Fatalf("ReadRecord made %.0f allocations on a truncated claim", allocs)
	}
	cr := &countingReader{data: input}
	if _, _, err := ReadRecord(cr); err == nil {
		t.Fatal("truncated claim accepted")
	}
	if cr.maxReq > readChunk {
		t.Fatalf("reader requested %d bytes in one call, chunk limit is %d", cr.maxReq, readChunk)
	}
}

func appendRaw(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

type countingReader struct {
	data   []byte
	off    int
	maxReq int
}

func (r *countingReader) Read(p []byte) (int, error) {
	if len(p) > r.maxReq {
		r.maxReq = len(p)
	}
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}
