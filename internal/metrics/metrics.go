// Package metrics implements the paper's accuracy measures (§4.2):
// the range-based EventRecall of Lee et al. 2018 with existence and
// overlap terms, standard frame-level precision, and their harmonic
// mean, the event F1 score used throughout the evaluation.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
)

// Alpha and Beta are the paper's EventRecall weights: α=0.9 rewards
// detecting at least one frame of each event, β=0.1 rewards covering
// more of it.
const (
	Alpha = 0.9
	Beta  = 0.1
)

// EventRecall computes the mean of α·Existence_i + β·Overlap_i over
// ground-truth events. predicted[i] is the smoothed per-frame
// prediction. Returns 0 when there are no events.
func EventRecall(events []dataset.Range, predicted []bool, alpha, beta float64) float64 {
	if len(events) == 0 {
		return 0
	}
	var total float64
	for _, e := range events {
		detected := 0
		for f := e.Start; f < e.End && f < len(predicted); f++ {
			if predicted[f] {
				detected++
			}
		}
		existence := 0.0
		if detected > 0 {
			existence = 1.0
		}
		overlap := float64(detected) / float64(e.Len())
		total += alpha*existence + beta*overlap
	}
	return total / float64(len(events))
}

// Precision is the standard frame-level precision: the fraction of
// predicted-positive frames that are truly positive. For
// FilterForward this is exactly the fraction of uplink bandwidth spent
// on relevant frames (§4.2). Returns 0 when nothing was predicted.
func Precision(truth, predicted []bool) float64 {
	if len(truth) != len(predicted) {
		panic(fmt.Sprintf("metrics: %d truth vs %d predicted frames", len(truth), len(predicted)))
	}
	tp, fp := 0, 0
	for i, p := range predicted {
		if !p {
			continue
		}
		if truth[i] {
			tp++
		} else {
			fp++
		}
	}
	if tp+fp == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fp)
}

// Result bundles the paper's accuracy numbers for one evaluation run.
type Result struct {
	// Precision is frame-level precision.
	Precision float64
	// Recall is the range-based EventRecall.
	Recall float64
	// F1 is the harmonic mean of Precision and Recall — the paper's
	// event F1 score.
	F1 float64
}

// Evaluate computes precision, event recall, and event F1 for a
// predicted label sequence against ground truth labels.
func Evaluate(truth, predicted []bool) Result {
	events := dataset.EventsFromLabels(truth)
	p := Precision(truth, predicted)
	r := EventRecall(events, predicted, Alpha, Beta)
	return Result{Precision: p, Recall: r, F1: F1(p, r)}
}

// F1 returns the harmonic mean of precision and recall (0 when both
// are 0).
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// FrameRecall is the standard frame-level recall, provided for
// comparison with the paper's event-centric recall.
func FrameRecall(truth, predicted []bool) float64 {
	if len(truth) != len(predicted) {
		panic(fmt.Sprintf("metrics: %d truth vs %d predicted frames", len(truth), len(predicted)))
	}
	tp, fn := 0, 0
	for i, tr := range truth {
		if !tr {
			continue
		}
		if predicted[i] {
			tp++
		} else {
			fn++
		}
	}
	if tp+fn == 0 {
		return 0
	}
	return float64(tp) / float64(tp+fn)
}

// ThresholdSweep evaluates predictions at multiple score thresholds
// and returns the results, one per threshold. scores are per-frame
// classifier probabilities; smoothing (if any) must already be
// applied by the caller via smooth.
func ThresholdSweep(truth []bool, scores []float32, thresholds []float32, smooth func([]bool) []bool) []Result {
	out := make([]Result, len(thresholds))
	for ti, th := range thresholds {
		pred := make([]bool, len(scores))
		for i, s := range scores {
			pred[i] = s >= th
		}
		if smooth != nil {
			pred = smooth(pred)
		}
		out[ti] = Evaluate(truth, pred)
	}
	return out
}

// BestF1 returns the Result with the highest F1 from a sweep, and its
// threshold.
func BestF1(truth []bool, scores []float32, thresholds []float32, smooth func([]bool) []bool) (Result, float32) {
	results := ThresholdSweep(truth, scores, thresholds, smooth)
	best, bestTh := Result{}, float32(0.5)
	for i, r := range results {
		if r.F1 > best.F1 {
			best, bestTh = r, thresholds[i]
		}
	}
	return best, bestTh
}

// AveragePrecision computes the area under the precision-recall curve
// (frame-level, rank-based) for per-frame scores against boolean
// ground truth — a threshold-free complement to the event F1 used in
// the paper's figures.
func AveragePrecision(truth []bool, scores []float32) float64 {
	if len(truth) != len(scores) {
		panic(fmt.Sprintf("metrics: %d truth vs %d scores", len(truth), len(scores)))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	totalPos := 0
	for _, v := range truth {
		if v {
			totalPos++
		}
	}
	if totalPos == 0 {
		return 0
	}
	tp := 0
	var ap float64
	for rank, i := range idx {
		if truth[i] {
			tp++
			ap += float64(tp) / float64(rank+1)
		}
	}
	return ap / float64(totalPos)
}
