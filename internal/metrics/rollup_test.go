package metrics

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// rollupLoads builds a deterministic synthetic fleet whose float
// terms are exactly representable: FPS is a power of two and frame
// counts are integers, so Frames/FPS is dyadic and the RatedSeconds
// sum is associative bit for bit. That makes the equality asserts
// below exact rather than within-epsilon.
func rollupLoads(n int) []NodeLoad {
	rng := rand.New(rand.NewSource(42))
	loads := make([]NodeLoad, n)
	for i := range loads {
		sum := func(count uint64) obs.Summary {
			return obs.Summary{
				Count: count,
				Sum:   int64(count) * (1000 + rng.Int63n(9000)),
				P50:   rng.Int63n(1 << 20),
				P95:   rng.Int63n(1 << 22),
				P99:   rng.Int63n(1 << 24),
				Max:   rng.Int63n(1 << 26),
			}
		}
		loads[i] = NodeLoad{
			Node:                   nodeName(i),
			Frames:                 16 + rng.Intn(512),
			FPS:                    []int{0, 8, 16, 32}[rng.Intn(4)],
			Uploads:                rng.Intn(64),
			UploadedBits:           rng.Int63n(1 << 24),
			DemandFetchBits:        rng.Int63n(1 << 20),
			ArchivedBits:           rng.Int63n(1 << 28),
			ArchiveBytes:           rng.Int63n(1 << 26),
			ArchiveEvictedSegments: rng.Intn(10),
			ArchiveEvictedBytes:    rng.Int63n(1 << 22),
			Evicted:                rng.Intn(3),
			Reconnects:             rng.Intn(5),
			ExtractLat:             sum(uint64(rng.Intn(100))),
			MCPushLat:              sum(uint64(rng.Intn(100))),
			QueueWaitLat:           sum(uint64(rng.Intn(100))),
			UploadRTTLat:           sum(uint64(rng.Intn(100))),
		}
	}
	return loads
}

func nodeName(i int) string {
	return "edge-" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

// TestSummarizeFleetOrderIndependent pins that the rollup is
// insensitive to the order loads arrive in — a sharded control plane
// reports nodes grouped by shard, an unsharded one sorted by name,
// and both must produce the same summary.
func TestSummarizeFleetOrderIndependent(t *testing.T) {
	loads := rollupLoads(64)
	want := SummarizeFleet(loads)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		perm := make([]NodeLoad, len(loads))
		for i, j := range rng.Perm(len(loads)) {
			perm[i] = loads[j]
		}
		if got := SummarizeFleet(perm); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted rollup differs:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

// TestMergeFleetCommutative pins commutativity: merging shard
// summaries in any order gives the same fleet summary. Without the
// deterministic MaxNode tie-break (lowest name wins at equal bitrate)
// this fails whenever two shards tie for the hot node.
func TestMergeFleetCommutative(t *testing.T) {
	loads := rollupLoads(60)
	parts := make([]FleetSummary, 6)
	for i := range parts {
		parts[i] = SummarizeFleet(loads[i*10 : (i+1)*10])
	}
	want := MergeFleet(parts)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		perm := make([]FleetSummary, len(parts))
		for i, j := range rng.Perm(len(parts)) {
			perm[i] = parts[j]
		}
		if got := MergeFleet(perm); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted merge differs:\n got %+v\nwant %+v", trial, got, want)
		}
	}
}

// TestMergeFleetAssociative pins associativity: it must not matter
// how the fleet is partitioned into shards. Summarizing every
// regrouping — per-node shards, one big shard, uneven splits — then
// merging must equal summarizing the concatenation directly. This is
// the exact property the sharded controller's cross-shard rollup
// relies on.
func TestMergeFleetAssociative(t *testing.T) {
	loads := rollupLoads(48)
	want := SummarizeFleet(loads)
	cuts := [][]int{
		{48},            // one shard
		{24, 24},        // even split
		{1, 47},         // lone node
		{5, 13, 7, 23},  // uneven
		{16, 16, 16},    // three-way
		make([]int, 48), // one shard per node
	}
	for i := range cuts[len(cuts)-1] {
		cuts[len(cuts)-1][i] = 1
	}
	for _, cut := range cuts {
		var parts []FleetSummary
		off := 0
		for _, n := range cut {
			parts = append(parts, SummarizeFleet(loads[off:off+n]))
			off += n
		}
		if got := MergeFleet(parts); !reflect.DeepEqual(got, want) {
			t.Fatalf("grouping %v: merged rollup differs:\n got %+v\nwant %+v", cut, got, want)
		}
	}

	// Associativity of Merge itself: ((a+b)+c) == (a+(b+c)).
	a := SummarizeFleet(loads[0:16])
	b := SummarizeFleet(loads[16:32])
	c := SummarizeFleet(loads[32:48])
	left := a
	left.Merge(b)
	left.Merge(c)
	bc := b
	bc.Merge(c)
	right := a
	right.Merge(bc)
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("Merge not associative:\n(a+b)+c %+v\na+(b+c) %+v", left, right)
	}
}

// TestMergeFleetEmptyIdentity pins that zero-value summaries are the
// identity element: an empty shard (all its nodes re-homed away)
// cannot perturb the fleet rollup.
func TestMergeFleetEmptyIdentity(t *testing.T) {
	loads := rollupLoads(16)
	want := SummarizeFleet(loads)
	got := MergeFleet([]FleetSummary{
		{}, SummarizeFleet(loads[:9]), {}, SummarizeFleet(loads[9:]), {},
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("empty summaries are not identity:\n got %+v\nwant %+v", got, want)
	}
	if got := MergeFleet(nil); !reflect.DeepEqual(got, FleetSummary{}) {
		t.Fatalf("MergeFleet(nil) = %+v, want zero", got)
	}
}
