package metrics

import "repro/internal/obs"

// NodeLoad summarizes one fleet stream's uplink counters as reported
// in the control plane's heartbeat records (internal/fleet). The
// datacenter controller converts heartbeats into NodeLoads and rolls
// them up with SummarizeFleet for its periodic status output.
type NodeLoad struct {
	// Node names the load source, conventionally "node/stream".
	Node string
	// Frames is the number of frames the pipeline processed.
	Frames int
	// FPS is the stream frame rate (used to convert counters into
	// rates; a non-positive FPS excludes the node from rate terms).
	FPS int
	// Uploads is the number of coded segments sent.
	Uploads int
	// UploadedBits is the total coded size of event-segment uploads.
	UploadedBits int64
	// DemandFetchBits is the demand-fetched archive traffic, reported
	// separately from the filtering pipeline's own output.
	DemandFetchBits int64
	// ArchivedBits is the codec-model cost of the stream's continuous
	// local archive. It is local-disk I/O, not uplink traffic, so it
	// stays out of Bitrate.
	ArchivedBits int64
	// ArchiveBytes is the stream's current on-disk archive footprint;
	// ArchiveEvictedSegments and ArchiveEvictedBytes count what its
	// retention policy has reclaimed.
	ArchiveBytes           int64
	ArchiveEvictedSegments int
	ArchiveEvictedBytes    int64
	// Evicted counts sessions the controller force-closed for this
	// node (heartbeat-liveness timeouts and stale sessions replaced
	// by a reconnect); Reconnects counts resume hellos accepted. Both
	// survive the sessions they describe — the fleet's
	// churn-vs-stability signal. They are node-level counters: when a
	// node contributes one NodeLoad per stream, set them on a single
	// load so SummarizeFleet does not double-count.
	Evicted    int
	Reconnects int
	// PendingUploads is the node's upload backlog (uploads buffered
	// edge-side awaiting a controller ack) from its latest heartbeat.
	// Node-level like Evicted: set it on a single load per node.
	PendingUploads int
	// ExtractLat, MCPushLat, QueueWaitLat, and UploadRTTLat digest the
	// node's latency histograms (base-DNN extraction, MC push,
	// scheduler queue wait, upload send-to-ack round trip) as carried
	// in heartbeats. Like Evicted/Reconnects they are node-level: when
	// a node contributes one NodeLoad per stream, set them on a single
	// load so SummarizeFleet does not double-count observations.
	ExtractLat   obs.Summary
	MCPushLat    obs.Summary
	QueueWaitLat obs.Summary
	UploadRTTLat obs.Summary
	// Scores merges the stream's per-MC cumulative score sketches as
	// carried in heartbeats — the semantic load next to the byte
	// counters above. The sketch is integer state (fixed-point moments
	// plus histogram counts), so rollups of it are exact under any
	// shard grouping, unlike the worst-case latency digests. Keyed by
	// stream in heartbeats, it is per-stream like Frames, not
	// node-level like ExtractLat.
	Scores obs.SketchSnapshot
	// DriftPSI and DriftKS are the worst most-recent drift scores
	// across the stream's (stream, MC) pairs as scored by the
	// controller's detector; Drifted counts pairs currently above an
	// alert threshold. Per-stream, like Scores.
	DriftPSI float64
	DriftKS  float64
	Drifted  int
	// MCVersion is the highest deployed model version across the
	// stream's MCs (zero for unversioned artifacts). Per-stream, like
	// Scores.
	MCVersion uint64
	// CanariesActive counts the stream's shadow candidates still under
	// evaluation; CanariesPromoted, CanariesRolledBack, and
	// CanariesExpired count decided ones still recorded in controller
	// state. Per-stream, like Scores.
	CanariesActive     int
	CanariesPromoted   int
	CanariesRolledBack int
	CanariesExpired    int
}

// Bitrate returns the node's realized average uplink usage in bits/s
// (uploads plus demand fetches — everything crossing the physical
// link), 0 when frames or FPS are unknown.
func (n NodeLoad) Bitrate() float64 {
	if n.Frames <= 0 || n.FPS <= 0 {
		return 0
	}
	return float64(n.UploadedBits+n.DemandFetchBits) / (float64(n.Frames) / float64(n.FPS))
}

// FleetSummary aggregates per-node loads into fleet-wide totals.
type FleetSummary struct {
	// Nodes is the number of loads aggregated.
	Nodes int
	// Frames, Uploads, UploadedBits, and DemandFetchBits are fleet
	// totals.
	Frames          int
	Uploads         int
	UploadedBits    int64
	DemandFetchBits int64
	// ArchivedBits, ArchiveBytes, ArchiveEvictedSegments, and
	// ArchiveEvictedBytes roll up the fleet's on-disk archives — the
	// capacity-planning view of how much context video the edges hold
	// and how hard retention is working.
	ArchivedBits           int64
	ArchiveBytes           int64
	ArchiveEvictedSegments int
	ArchiveEvictedBytes    int64
	// Evicted and Reconnects total the fleet's session-lifecycle
	// churn: sessions the controller force-closed and resume hellos
	// it accepted. A healthy fleet on a flaky backhaul shows
	// Reconnects ≈ Evicted + connection-loss count and steady upload
	// totals; Reconnects of zero alongside evictions means nodes are
	// dying, not recovering.
	Evicted    int
	Reconnects int
	// PendingUploads totals the fleet's edge-side upload backlog — the
	// uploads buffered awaiting controller acks as of the latest
	// heartbeats.
	PendingUploads int
	// ExtractLat, MCPushLat, QueueWaitLat, and UploadRTTLat are the
	// fleet's latency rollups, merged worst-case across nodes
	// (obs.Summary.Merge): counts and sums add, quantiles and max take
	// the maximum. The merged p95 is therefore the worst per-node p95,
	// not a true fleet-wide quantile — a deliberately pessimistic bound
	// that never hides a slow node behind a fast fleet average.
	ExtractLat   obs.Summary
	MCPushLat    obs.Summary
	QueueWaitLat obs.Summary
	UploadRTTLat obs.Summary
	// AverageBitrate is total uploaded bits over total stream time
	// across nodes with a known rate, in bits/s.
	AverageBitrate float64
	// RatedBits and RatedSeconds are AverageBitrate's numerator and
	// denominator (link bits and stream time of nodes with a known
	// rate). They are carried explicitly so per-shard summaries merge
	// exactly: averages of averages drift, but sums of sums do not.
	RatedBits    int64
	RatedSeconds float64
	// MaxNodeBitrate is the highest single-node average bitrate —
	// the hot spot a capacity planner watches.
	MaxNodeBitrate float64
	// MaxNode names the node behind MaxNodeBitrate.
	MaxNode string
	// Scores is the fleet-wide merge of per-stream score sketches.
	// Sketch merging is exact (integer adds), so the fleet sketch is
	// bit-for-bit identical however loads are grouped into shards.
	Scores obs.SketchSnapshot
	// Drifted totals the fleet's (stream, MC) pairs currently above a
	// drift alert threshold. MaxDriftPSI and MaxDriftKS are the worst
	// per-load drift scores; MaxDriftNode names the load behind
	// MaxDriftPSI (ties break toward the smaller name, keeping the
	// pick a proper semilattice like MaxNode).
	Drifted      int
	MaxDriftPSI  float64
	MaxDriftKS   float64
	MaxDriftNode string
	// MaxMCVersion is the highest deployed model version anywhere in
	// the fleet — a max, so it is exact under any shard grouping.
	MaxMCVersion uint64
	// CanariesActive, CanariesPromoted, CanariesRolledBack, and
	// CanariesExpired total the fleet's canary states (sums, exact
	// under any grouping).
	CanariesActive     int
	CanariesPromoted   int
	CanariesRolledBack int
	CanariesExpired    int
}

// SummarizeFleet rolls up per-node heartbeat loads into a fleet
// summary.
func SummarizeFleet(nodes []NodeLoad) FleetSummary {
	var s FleetSummary
	for _, n := range nodes {
		s.Nodes++
		s.Frames += n.Frames
		s.Uploads += n.Uploads
		s.UploadedBits += n.UploadedBits
		s.DemandFetchBits += n.DemandFetchBits
		s.ArchivedBits += n.ArchivedBits
		s.ArchiveBytes += n.ArchiveBytes
		s.ArchiveEvictedSegments += n.ArchiveEvictedSegments
		s.ArchiveEvictedBytes += n.ArchiveEvictedBytes
		s.Evicted += n.Evicted
		s.Reconnects += n.Reconnects
		s.PendingUploads += n.PendingUploads
		s.ExtractLat.Merge(n.ExtractLat)
		s.MCPushLat.Merge(n.MCPushLat)
		s.QueueWaitLat.Merge(n.QueueWaitLat)
		s.UploadRTTLat.Merge(n.UploadRTTLat)
		if n.Frames > 0 && n.FPS > 0 {
			s.RatedSeconds += float64(n.Frames) / float64(n.FPS)
			s.RatedBits += n.UploadedBits + n.DemandFetchBits
		}
		// The hot-spot pick must be a proper semilattice (deterministic
		// under reordering) or sharded rollups would disagree with the
		// unsharded one: ties on bitrate break toward the smaller name.
		if br := n.Bitrate(); br > s.MaxNodeBitrate ||
			(br > 0 && br == s.MaxNodeBitrate && n.Node < s.MaxNode) {
			s.MaxNodeBitrate = br
			s.MaxNode = n.Node
		}
		s.Scores.Merge(n.Scores)
		s.Drifted += n.Drifted
		if n.DriftPSI > s.MaxDriftPSI ||
			(n.DriftPSI > 0 && n.DriftPSI == s.MaxDriftPSI && n.Node < s.MaxDriftNode) {
			s.MaxDriftPSI = n.DriftPSI
			s.MaxDriftNode = n.Node
		}
		if n.DriftKS > s.MaxDriftKS {
			s.MaxDriftKS = n.DriftKS
		}
		if n.MCVersion > s.MaxMCVersion {
			s.MaxMCVersion = n.MCVersion
		}
		s.CanariesActive += n.CanariesActive
		s.CanariesPromoted += n.CanariesPromoted
		s.CanariesRolledBack += n.CanariesRolledBack
		s.CanariesExpired += n.CanariesExpired
	}
	if s.RatedSeconds > 0 {
		s.AverageBitrate = float64(s.RatedBits) / s.RatedSeconds
	}
	return s
}

// Merge folds another summary into s — the cross-shard rollup. Counts
// and totals add; latency digests merge with the same worst-case
// semantics SummarizeFleet uses (obs.Summary.Merge); AverageBitrate is
// recomputed from the exact RatedBits/RatedSeconds sums; the hot-spot
// node is the bitrate maximum with the same smaller-name tie-break.
// Merge is associative and commutative, so shards may report in any
// order, grouping, or interleaving and the rollup is identical — and
// equal to SummarizeFleet over the concatenated loads.
func (s *FleetSummary) Merge(o FleetSummary) {
	s.Nodes += o.Nodes
	s.Frames += o.Frames
	s.Uploads += o.Uploads
	s.UploadedBits += o.UploadedBits
	s.DemandFetchBits += o.DemandFetchBits
	s.ArchivedBits += o.ArchivedBits
	s.ArchiveBytes += o.ArchiveBytes
	s.ArchiveEvictedSegments += o.ArchiveEvictedSegments
	s.ArchiveEvictedBytes += o.ArchiveEvictedBytes
	s.Evicted += o.Evicted
	s.Reconnects += o.Reconnects
	s.PendingUploads += o.PendingUploads
	s.ExtractLat.Merge(o.ExtractLat)
	s.MCPushLat.Merge(o.MCPushLat)
	s.QueueWaitLat.Merge(o.QueueWaitLat)
	s.UploadRTTLat.Merge(o.UploadRTTLat)
	s.RatedBits += o.RatedBits
	s.RatedSeconds += o.RatedSeconds
	if o.MaxNodeBitrate > s.MaxNodeBitrate ||
		(o.MaxNodeBitrate > 0 && o.MaxNodeBitrate == s.MaxNodeBitrate && o.MaxNode < s.MaxNode) {
		s.MaxNodeBitrate = o.MaxNodeBitrate
		s.MaxNode = o.MaxNode
	}
	s.Scores.Merge(o.Scores)
	s.Drifted += o.Drifted
	if o.MaxDriftPSI > s.MaxDriftPSI ||
		(o.MaxDriftPSI > 0 && o.MaxDriftPSI == s.MaxDriftPSI && o.MaxDriftNode < s.MaxDriftNode) {
		s.MaxDriftPSI = o.MaxDriftPSI
		s.MaxDriftNode = o.MaxDriftNode
	}
	if o.MaxDriftKS > s.MaxDriftKS {
		s.MaxDriftKS = o.MaxDriftKS
	}
	if o.MaxMCVersion > s.MaxMCVersion {
		s.MaxMCVersion = o.MaxMCVersion
	}
	s.CanariesActive += o.CanariesActive
	s.CanariesPromoted += o.CanariesPromoted
	s.CanariesRolledBack += o.CanariesRolledBack
	s.CanariesExpired += o.CanariesExpired
	s.AverageBitrate = 0
	if s.RatedSeconds > 0 {
		s.AverageBitrate = float64(s.RatedBits) / s.RatedSeconds
	}
}

// MergeFleet rolls per-shard summaries up into one fleet summary.
func MergeFleet(parts []FleetSummary) FleetSummary {
	var s FleetSummary
	for _, p := range parts {
		s.Merge(p)
	}
	return s
}
