package metrics

import (
	"math"
	"testing"
)

func TestNodeLoadBitrate(t *testing.T) {
	n := NodeLoad{Frames: 150, FPS: 15, UploadedBits: 1_000_000}
	if got := n.Bitrate(); math.Abs(got-100_000) > 1e-6 {
		t.Fatalf("bitrate = %v, want 100000", got)
	}
	if got := (NodeLoad{Frames: 0, FPS: 15}).Bitrate(); got != 0 {
		t.Fatalf("zero-frame bitrate = %v", got)
	}
	if got := (NodeLoad{Frames: 10, FPS: 0, UploadedBits: 99}).Bitrate(); got != 0 {
		t.Fatalf("unknown-FPS bitrate = %v", got)
	}
	// Archive bits are local-disk I/O, not uplink traffic.
	withArchive := NodeLoad{Frames: 150, FPS: 15, UploadedBits: 1_000_000, ArchivedBits: 77_000_000}
	if got := withArchive.Bitrate(); math.Abs(got-100_000) > 1e-6 {
		t.Fatalf("archive bits leaked into uplink bitrate: %v", got)
	}
}

func TestSummarizeFleet(t *testing.T) {
	s := SummarizeFleet([]NodeLoad{
		{Node: "a/cam0", Frames: 150, FPS: 15, Uploads: 3, UploadedBits: 1_000_000,
			ArchivedBits: 10_000, ArchiveBytes: 2_048, ArchiveEvictedSegments: 2, ArchiveEvictedBytes: 512},
		{Node: "b/cam0", Frames: 300, FPS: 15, Uploads: 5, UploadedBits: 4_000_000,
			ArchivedBits: 30_000, ArchiveBytes: 4_096, ArchiveEvictedSegments: 1, ArchiveEvictedBytes: 256},
		{Node: "c/cam0", Frames: 0, FPS: 15, Uploads: 0, UploadedBits: 0},
	})
	if s.Nodes != 3 || s.Frames != 450 || s.Uploads != 8 || s.UploadedBits != 5_000_000 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if s.ArchivedBits != 40_000 || s.ArchiveBytes != 6_144 ||
		s.ArchiveEvictedSegments != 3 || s.ArchiveEvictedBytes != 768 {
		t.Fatalf("archive totals wrong: %+v", s)
	}
	// 450 frames at 15 fps = 30 s of stream time; 5 Mb over 30 s.
	if math.Abs(s.AverageBitrate-5_000_000.0/30) > 1e-6 {
		t.Fatalf("average bitrate = %v", s.AverageBitrate)
	}
	// b: 4 Mb over 20 s = 200 kb/s is the hot spot.
	if s.MaxNode != "b/cam0" || math.Abs(s.MaxNodeBitrate-200_000) > 1e-6 {
		t.Fatalf("hot spot wrong: %q %v", s.MaxNode, s.MaxNodeBitrate)
	}
}

func TestSummarizeFleetLifecycle(t *testing.T) {
	// Lifecycle counters are node-level: a multi-stream node carries
	// them on one load, and the summary totals across nodes.
	s := SummarizeFleet([]NodeLoad{
		{Node: "a/cam0", Frames: 150, FPS: 15, Evicted: 1, Reconnects: 2},
		{Node: "a/cam1", Frames: 150, FPS: 15}, // same node, counters on cam0 only
		{Node: "b/cam0", Frames: 150, FPS: 15, Reconnects: 1},
	})
	if s.Evicted != 1 || s.Reconnects != 3 {
		t.Fatalf("lifecycle totals wrong: evicted %d, reconnects %d", s.Evicted, s.Reconnects)
	}
}

func TestSummarizeFleetEmpty(t *testing.T) {
	s := SummarizeFleet(nil)
	if s.Nodes != 0 || s.AverageBitrate != 0 || s.MaxNode != "" {
		t.Fatalf("empty summary wrong: %+v", s)
	}
}
