package metrics

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
)

func TestEventRecallExistenceDominates(t *testing.T) {
	events := []dataset.Range{{Start: 0, End: 10}}
	pred := make([]bool, 10)
	pred[3] = true // one detected frame
	got := EventRecall(events, pred, Alpha, Beta)
	want := 0.9*1 + 0.1*0.1
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("recall = %v, want %v", got, want)
	}
}

func TestEventRecallFullOverlap(t *testing.T) {
	events := []dataset.Range{{Start: 2, End: 6}}
	pred := []bool{false, false, true, true, true, true, false}
	got := EventRecall(events, pred, Alpha, Beta)
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("recall = %v, want 1", got)
	}
}

func TestEventRecallMissedEvent(t *testing.T) {
	events := []dataset.Range{{Start: 0, End: 5}, {Start: 10, End: 15}}
	pred := make([]bool, 15)
	for f := 10; f < 15; f++ {
		pred[f] = true
	}
	got := EventRecall(events, pred, Alpha, Beta)
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("recall = %v, want 0.5", got)
	}
}

func TestEventRecallNoEvents(t *testing.T) {
	if EventRecall(nil, []bool{true}, Alpha, Beta) != 0 {
		t.Fatal("recall with no events should be 0")
	}
}

func TestPrecision(t *testing.T) {
	truth := []bool{true, true, false, false}
	pred := []bool{true, false, true, false}
	if got := Precision(truth, pred); got != 0.5 {
		t.Fatalf("precision = %v, want 0.5", got)
	}
	if Precision(truth, []bool{false, false, false, false}) != 0 {
		t.Fatal("empty prediction precision should be 0")
	}
}

func TestPerfectPredictionsScoreOne(t *testing.T) {
	truth := []bool{false, true, true, false, true}
	r := Evaluate(truth, truth)
	if r.Precision != 1 || math.Abs(r.Recall-1) > 1e-9 || math.Abs(r.F1-1) > 1e-9 {
		t.Fatalf("perfect eval = %+v", r)
	}
}

func TestF1HarmonicMean(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Fatal("F1(0,0) != 0")
	}
	if got := F1(1, 0.5); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("F1(1,0.5) = %v", got)
	}
}

func TestFrameRecall(t *testing.T) {
	truth := []bool{true, true, true, false}
	pred := []bool{true, false, true, true}
	if got := FrameRecall(truth, pred); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("frame recall = %v", got)
	}
}

func TestPrecisionIsBandwidthFraction(t *testing.T) {
	// Precision 1.0 means all uploaded frames are relevant (§4.2): a
	// prediction that uploads only true positives has precision 1 even
	// if it misses frames.
	truth := []bool{true, true, true, false, false}
	pred := []bool{true, false, false, false, false}
	if Precision(truth, pred) != 1 {
		t.Fatal("subset of true positives should have precision 1")
	}
}

func TestThresholdSweepMonotoneCoverage(t *testing.T) {
	truth := []bool{false, true, true, false}
	scores := []float32{0.1, 0.9, 0.6, 0.2}
	rs := ThresholdSweep(truth, scores, []float32{0.5, 0.95}, nil)
	if rs[0].Recall <= rs[1].Recall {
		t.Fatalf("lower threshold should not reduce recall: %+v", rs)
	}
}

func TestBestF1PicksMax(t *testing.T) {
	truth := []bool{false, true, true, false}
	scores := []float32{0.4, 0.9, 0.6, 0.45}
	r, th := BestF1(truth, scores, []float32{0.3, 0.5, 0.7, 0.95}, nil)
	if th != 0.5 {
		t.Fatalf("best threshold = %v, want 0.5 (result %+v)", th, r)
	}
	if math.Abs(r.F1-1) > 1e-9 {
		t.Fatalf("best F1 = %v, want 1", r.F1)
	}
}

func TestEvaluateMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Precision([]bool{true}, []bool{true, false})
}

func TestAveragePrecisionPerfectRanking(t *testing.T) {
	truth := []bool{true, true, false, false}
	scores := []float32{0.9, 0.8, 0.2, 0.1}
	if got := AveragePrecision(truth, scores); math.Abs(got-1) > 1e-9 {
		t.Fatalf("AP = %v, want 1", got)
	}
}

func TestAveragePrecisionWorstRanking(t *testing.T) {
	truth := []bool{false, false, true}
	scores := []float32{0.9, 0.8, 0.1}
	// Single positive at rank 3: AP = 1/3.
	if got := AveragePrecision(truth, scores); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Fatalf("AP = %v, want 1/3", got)
	}
}

func TestAveragePrecisionNoPositives(t *testing.T) {
	if AveragePrecision([]bool{false}, []float32{0.5}) != 0 {
		t.Fatal("AP with no positives should be 0")
	}
}

func TestSummarizeFleetLatencyWorstCaseMerge(t *testing.T) {
	fast := obs.Summary{Count: 100, Sum: 1000, P50: 8, P95: 20, P99: 30, Max: 40}
	slow := obs.Summary{Count: 10, Sum: 5000, P50: 100, P95: 400, P99: 450, Max: 500}
	sum := SummarizeFleet([]NodeLoad{
		{Node: "a/cam0", ExtractLat: fast, QueueWaitLat: slow},
		{Node: "b/cam0", ExtractLat: slow, QueueWaitLat: fast},
		{Node: "b/cam1"}, // second stream of node b: zero summaries, no double count
	})
	// Counts and sums add; quantiles and max take the worst node.
	if sum.ExtractLat.Count != 110 || sum.ExtractLat.Sum != 6000 {
		t.Fatalf("count/sum merge wrong: %+v", sum.ExtractLat)
	}
	if sum.ExtractLat.P50 != 100 || sum.ExtractLat.P95 != 400 || sum.ExtractLat.P99 != 450 || sum.ExtractLat.Max != 500 {
		t.Fatalf("quantile merge not worst-case: %+v", sum.ExtractLat)
	}
	if sum.QueueWaitLat.P95 != 400 {
		t.Fatalf("queue-wait merge wrong: %+v", sum.QueueWaitLat)
	}
	// Unset summaries on extra per-stream loads contribute nothing.
	if sum.MCPushLat.Count != 0 || sum.MCPushLat.P95 != 0 {
		t.Fatalf("uninstrumented summary polluted rollup: %+v", sum.MCPushLat)
	}
}
