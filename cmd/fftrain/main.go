// Command fftrain performs the application developer's offline step
// (§3.2): it pretrains a base DNN, trains one microclassifier on the
// training day of a synthetic dataset, tunes its decision threshold,
// reports train-day accuracy, and saves the weights for ffrun.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/event"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/mobilenet"
	"repro/internal/pretrain"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	var (
		dsName = flag.String("dataset", "roadway", "jackson|roadway")
		archS  = flag.String("arch", "localized", "detector|localized|windowed|pooling")
		width  = flag.Int("width", 96, "working-scale frame width")
		frames = flag.Int("frames", 1200, "training-day frames")
		epochs = flag.Int("epochs", 8, "training epochs")
		seed   = flag.Int64("seed", 1, "seed")
		out    = flag.String("out", "mc.weights", "output weights file")
	)
	flag.Parse()

	arch, ok := map[string]filter.Arch{
		"detector":  filter.FullFrameObjectDetector,
		"localized": filter.LocalizedBinary,
		"windowed":  filter.WindowedLocalizedBinary,
		"pooling":   filter.PoolingClassifier,
	}[*archS]
	if !ok {
		fmt.Fprintf(os.Stderr, "fftrain: unknown arch %q\n", *archS)
		os.Exit(1)
	}
	var cfg dataset.Config
	switch *dsName {
	case "jackson":
		cfg = dataset.Jackson(*width, *frames, *seed)
	case "roadway":
		cfg = dataset.Roadway(*width, *frames, *seed)
	default:
		fmt.Fprintf(os.Stderr, "fftrain: unknown dataset %q\n", *dsName)
		os.Exit(1)
	}
	d := dataset.Generate(cfg)

	fmt.Println("pretraining base DNN on the sprite pretext task ...")
	base := mobilenet.New(mobilenet.Config{WidthMult: 0.25, BatchNorm: true, Seed: *seed + 100})
	if _, err := pretrain.Run(base, pretrain.Config{Seed: *seed + 101, Log: os.Stdout}); err != nil {
		fmt.Fprintln(os.Stderr, "fftrain:", err)
		os.Exit(1)
	}

	crop := cfg.Region()
	spec := filter.Spec{Name: *dsName + "-" + *archS, Arch: arch, Crop: &crop, Seed: *seed + 1}
	mc, err := filter.NewMC(spec, base, cfg.Width, cfg.Height)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fftrain:", err)
		os.Exit(1)
	}

	fmt.Printf("extracting %s features for %d frames ...\n", mc.Stage(), cfg.Frames)
	fms := make([]*tensor.Tensor, cfg.Frames)
	for i := range fms {
		fm, err := base.Extract(d.FrameTensor(i), mc.Stage())
		if err != nil {
			fmt.Fprintln(os.Stderr, "fftrain:", err)
			os.Exit(1)
		}
		fms[i] = fm
	}
	mean, std := filter.ChannelStats(fms)
	if err := mc.SetNormalization(mean, std); err != nil {
		fmt.Fprintln(os.Stderr, "fftrain:", err)
		os.Exit(1)
	}

	var samples []train.Sample
	for i := range fms {
		y := float32(0)
		if d.Labels[i] {
			y = 1
		}
		samples = append(samples, train.Sample{X: mc.BuildInput(fms, i), Y: y})
	}
	fmt.Printf("training %s (%v) on %d samples ...\n", spec.Name, arch, len(samples))
	loss, err := train.Fit(mc.Net(), samples, train.Config{
		Epochs: *epochs, BatchSize: 16, Seed: *seed, BalanceClasses: true,
		Optimizer: train.NewAdam(0.003),
		Progress:  func(e int, l float64) { fmt.Printf("  epoch %d loss %.4f\n", e, l) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fftrain:", err)
		os.Exit(1)
	}

	// Tune the threshold on the training day.
	scores := make([]float32, len(fms))
	mc.Reset()
	record := func(cs []filter.Classification) {
		for _, c := range cs {
			scores[c.Frame] = c.Prob
		}
	}
	for _, fm := range fms {
		record(mc.Push(fm))
	}
	record(mc.Flush())
	var grid []float32
	for t := float32(0.05); t < 1; t += 0.05 {
		grid = append(grid, t)
	}
	best, th := metrics.BestF1(d.Labels, scores, grid, func(raw []bool) []bool {
		return event.SmoothKofN(raw, event.DefaultN, event.DefaultK)
	})
	fmt.Printf("final loss %.4f; train-day event F1 %.3f at threshold %.2f\n", loss, best.F1, th)

	if err := mc.SaveFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "fftrain:", err)
		os.Exit(1)
	}
	fmt.Printf("saved weights to %s (deploy with: ffrun -weights %s -threshold %.2f)\n", *out, *out, th)
}
