// Command ffgen generates a synthetic dataset, prints its Figure 3b
// statistics, and optionally writes sample frames as PNGs for visual
// inspection.
package main

import (
	"flag"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/vision"
)

func main() {
	var (
		name   = flag.String("dataset", "jackson", "jackson|roadway")
		width  = flag.Int("width", 192, "working-scale frame width")
		frames = flag.Int("frames", 3000, "number of frames")
		seed   = flag.Int64("seed", 1, "schedule seed (use seed+1 for the test day)")
		dump   = flag.Int("dump", 0, "write this many sample frames as PNGs")
		outDir = flag.String("out", ".", "directory for dumped frames")
	)
	flag.Parse()

	var cfg dataset.Config
	switch *name {
	case "jackson":
		cfg = dataset.Jackson(*width, *frames, *seed)
	case "roadway":
		cfg = dataset.Roadway(*width, *frames, *seed)
	default:
		fmt.Fprintf(os.Stderr, "ffgen: unknown dataset %q\n", *name)
		os.Exit(1)
	}
	d := dataset.Generate(cfg)
	s := d.Stats()
	fmt.Printf("dataset      %s (%s task)\n", cfg.Name, cfg.TaskName)
	fmt.Printf("resolution   %dx%d (native %dx%d), %d fps\n", cfg.Width, cfg.Height, cfg.PaperWidth, cfg.PaperHeight, cfg.FPS)
	fmt.Printf("frames       %d\n", s.Frames)
	fmt.Printf("event frames %d (%.1f%%)\n", s.EventFrames, 100*s.EventFraction)
	fmt.Printf("events       %d (mean length %.1f frames)\n", s.UniqueEvents, s.MeanEventLen)
	fmt.Printf("task region  %+v (working coords)\n", cfg.Region())

	if *dump > 0 {
		step := *frames / *dump
		if step < 1 {
			step = 1
		}
		for i := 0; i < *frames && i/step < *dump; i += step {
			path := filepath.Join(*outDir, fmt.Sprintf("%s-%06d-%v.png", cfg.Name, i, d.Labels[i]))
			if err := writePNG(path, d.Frame(i)); err != nil {
				fmt.Fprintf(os.Stderr, "ffgen: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

// writePNG converts a float RGB frame to an 8-bit PNG.
func writePNG(path string, im *vision.Image) error {
	out := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			out.Set(x, y, color.RGBA{R: to8(r), G: to8(g), B: to8(b), A: 255})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := png.Encode(f, out); err != nil {
		return err
	}
	return f.Close()
}

func to8(v float32) uint8 {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return uint8(v*254.99 + 0.5)
}
