// Command ffrun runs the FilterForward edge pipeline end to end on a
// synthetic camera stream: it deploys a microclassifier (either one
// trained by fftrain or a freshly trained quick one), processes the
// test day, and reports uploads, bandwidth, and event F1 against
// ground truth.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/mobilenet"
	"repro/internal/pretrain"
	"repro/internal/transport"
)

func main() {
	var (
		dsName    = flag.String("dataset", "roadway", "jackson|roadway")
		width     = flag.Int("width", 96, "working-scale frame width")
		frames    = flag.Int("frames", 1200, "stream length")
		seed      = flag.Int64("seed", 2, "stream seed (2 = the test day)")
		weights   = flag.String("weights", "", "MC weights from fftrain (required)")
		threshold = flag.Float64("threshold", 0.5, "decision threshold from fftrain")
		bitrate   = flag.Float64("bitrate", 60_000, "upload re-encode bitrate (b/s)")
		uplink    = flag.Float64("uplink", 0, "uplink capacity in b/s (0 = unmodelled)")
		connect   = flag.String("connect", "", "optional ffserve address to stream uploads to")
	)
	flag.Parse()
	if *weights == "" {
		fmt.Fprintln(os.Stderr, "ffrun: -weights is required (train one with fftrain)")
		os.Exit(1)
	}

	var cfg dataset.Config
	switch *dsName {
	case "jackson":
		cfg = dataset.Jackson(*width, *frames, *seed)
	case "roadway":
		cfg = dataset.Roadway(*width, *frames, *seed)
	default:
		fmt.Fprintf(os.Stderr, "ffrun: unknown dataset %q\n", *dsName)
		os.Exit(1)
	}
	d := dataset.Generate(cfg)

	// The base DNN must match fftrain's (same seed derivation).
	base := mobilenet.New(mobilenet.Config{WidthMult: 0.25, BatchNorm: true, Seed: 1 + 100})
	if _, err := pretrain.Run(base, pretrain.Config{Seed: 1 + 101}); err != nil {
		fmt.Fprintln(os.Stderr, "ffrun:", err)
		os.Exit(1)
	}
	mc, err := filter.LoadMCFile(*weights, base, cfg.Width, cfg.Height)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffrun:", err)
		os.Exit(1)
	}

	edge, err := core.NewEdgeNode(core.Config{
		FrameWidth: cfg.Width, FrameHeight: cfg.Height, FPS: cfg.FPS,
		Base: base, UploadBitrate: *bitrate, UplinkBandwidth: *uplink,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffrun:", err)
		os.Exit(1)
	}
	if err := edge.Deploy(mc, float32(*threshold)); err != nil {
		fmt.Fprintln(os.Stderr, "ffrun:", err)
		os.Exit(1)
	}

	var remote *transport.Client
	if *connect != "" {
		var err error
		remote, err = transport.Dial("tcp", *connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffrun:", err)
			os.Exit(1)
		}
		defer remote.Close()
	}

	dc := core.NewDatacenter()
	send := func(ups []core.Upload) {
		dc.ReceiveAll(ups)
		if remote != nil {
			if err := remote.SendAll(ups); err != nil {
				fmt.Fprintln(os.Stderr, "ffrun: remote:", err)
				os.Exit(1)
			}
		}
	}
	for i := 0; i < cfg.Frames; i++ {
		ups, err := edge.ProcessFrame(d.Frame(i))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffrun:", err)
			os.Exit(1)
		}
		for _, u := range ups {
			fmt.Printf("upload: mc=%s event=%d frames=[%d,%d) bits=%d final=%v\n",
				u.MCName, u.EventID, u.Start, u.End, u.Bits, u.Final)
		}
		send(ups)
	}
	ups, err := edge.Flush()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffrun:", err)
		os.Exit(1)
	}
	send(ups)

	st := edge.Stats()
	pred := dc.PredictedLabels(mc.Spec().Name, cfg.Frames)
	r := metrics.Evaluate(d.Labels, pred)
	fmt.Printf("\nframes processed   %d\n", st.Frames)
	fmt.Printf("uploads            %d (%d frames, %d bits)\n", st.Uploads, st.UploadedFrames, st.UploadedBits)
	fmt.Printf("average uplink     %.1f kb/s\n", st.AverageUploadBitrate(cfg.FPS)/1000)
	fmt.Printf("event precision    %.3f\n", r.Precision)
	fmt.Printf("event recall       %.3f\n", r.Recall)
	fmt.Printf("event F1           %.3f\n", r.F1)
}
