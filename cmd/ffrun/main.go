// Command ffrun runs the FilterForward edge pipeline end to end on a
// synthetic camera stream: it deploys a microclassifier (trained by
// fftrain), processes the test day, and reports uploads, bandwidth,
// and event F1 against ground truth. With -connect it runs as a fleet
// agent: uploads stream to an ffserve controller, which can also
// deploy additional MCs to the node and demand-fetch archived context
// (the dataset doubles as the node's local archive).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/filter"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/mobilenet"
	"repro/internal/obs"
	"repro/internal/pretrain"
)

func main() {
	var (
		dsName    = flag.String("dataset", "roadway", "jackson|roadway")
		width     = flag.Int("width", 96, "working-scale frame width")
		frames    = flag.Int("frames", 1200, "stream length")
		seed      = flag.Int64("seed", 2, "stream seed (2 = the test day)")
		bdrift    = flag.Float64("brightness-drift", -1, "override the dataset's sinusoidal lighting-drift amplitude (-1 keeps the dataset default; e.g. 0.7 induces a strong day-night shift for drift-detection smokes)")
		weights   = flag.String("weights", "", "MC weights from fftrain (required unless the controller deploys one)")
		threshold = flag.Float64("threshold", 0.5, "decision threshold from fftrain")
		bitrate   = flag.Float64("bitrate", 60_000, "upload re-encode bitrate (b/s)")
		uplink    = flag.Float64("uplink", 0, "uplink capacity in b/s (0 = unmodelled)")
		connect   = flag.String("connect", "", "optional ffserve address to join as a fleet agent")
		nodeName  = flag.String("node", "edge", "node name announced to the controller")
		stream    = flag.String("stream", "cam0", "stream name announced to the controller")
		reconnect = flag.Bool("reconnect", true, "auto-reconnect with backoff when the controller session dies; buffered uploads are retransmitted and deduplicated on resume")

		archiveDir     = flag.String("archive-dir", "", "archive the full original stream to per-stream segment files under this directory; demand-fetch then serves from disk")
		archiveBudget  = flag.Int64("archive-budget", 0, "archive byte budget (0 = unbounded; oldest segments evicted first)")
		archiveBitrate = flag.Float64("archive-bitrate", 0, "codec-model bitrate accounted for the continuous archive (b/s; default 4x -bitrate)")

		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/trace.json, and /debug/pprof on this address (empty disables)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON lines")
		slowFrame = flag.Duration("slow-frame", 0, "log the full span chain of frames slower than this (0 disables)")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, *logJSON, slog.LevelInfo)
	if *weights == "" && *connect == "" {
		log.Error("ffrun: -weights is required (train one with fftrain), unless -connect lets the controller deploy one")
		os.Exit(1)
	}

	var cfg dataset.Config
	switch *dsName {
	case "jackson":
		cfg = dataset.Jackson(*width, *frames, *seed)
	case "roadway":
		cfg = dataset.Roadway(*width, *frames, *seed)
	default:
		log.Error("ffrun: unknown dataset", "dataset", *dsName)
		os.Exit(1)
	}
	if *bdrift >= 0 {
		cfg.BrightnessDrift = float32(*bdrift)
	}
	d := dataset.Generate(cfg)

	// The base DNN must match fftrain's (same seed derivation).
	base := mobilenet.New(mobilenet.Config{WidthMult: 0.25, BatchNorm: true, Seed: 1 + 100})
	if _, err := pretrain.Run(base, pretrain.Config{Seed: 1 + 101}); err != nil {
		log.Error("ffrun: pretrain failed", "err", err)
		os.Exit(1)
	}

	// Observability is always on: the instrumentation is alloc-free on
	// the hot path, and the observer doubles as the slow-frame trigger
	// and the -debug-addr data source.
	observer := obs.NewObserver(obs.Options{SlowFrame: *slowFrame, Log: log})
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, observer)
		if err != nil {
			log.Error("ffrun: debug server failed", "err", err)
			os.Exit(1)
		}
		defer dbg.Close()
		log.Info("ffrun: debug server listening",
			"addr", dbg.Addr, "endpoints", "/metrics /debug/trace.json /debug/pprof/")
	}

	// The edge pipeline runs inside a fleet agent; without -connect it
	// stays offline and behaves exactly like the local pipeline.
	agent, err := fleet.NewAgent(fleet.AgentConfig{
		Node: *nodeName,
		Edge: core.Config{
			FrameWidth: cfg.Width, FrameHeight: cfg.Height, FPS: cfg.FPS,
			Base: base, UploadBitrate: *bitrate, UplinkBandwidth: *uplink,
			ArchiveToDisk: *archiveDir != "", ArchiveBitrate: *archiveBitrate,
			Obs: observer,
		},
		Reconnect:     *reconnect,
		ArchiveDir:    *archiveDir,
		ArchiveBudget: *archiveBudget,
	})
	if err != nil {
		log.Error("ffrun: agent setup failed", "err", err)
		os.Exit(1)
	}
	// The dataset is also the node's local archive for demand-fetch.
	edge, err := agent.AddStream(*stream, cfg.Width, cfg.Height, d)
	if err != nil {
		log.Error("ffrun: add stream failed", "stream", *stream, "err", err)
		os.Exit(1)
	}

	var mcName string
	if *weights != "" {
		mc, err := filter.LoadMCFile(*weights, base, cfg.Width, cfg.Height)
		if err != nil {
			log.Error("ffrun: load weights failed", "weights", *weights, "err", err)
			os.Exit(1)
		}
		if err := edge.Deploy(mc, float32(*threshold)); err != nil {
			log.Error("ffrun: deploy failed", "mc", mc.Spec().Name, "err", err)
			os.Exit(1)
		}
		mcName = mc.Spec().Name
	}

	// Closing the agent also drains and fsyncs the on-disk archive, so
	// it runs in offline mode too (it is a no-op on the network side
	// when never connected). Stats print before the deferred close;
	// ArchiveStats barriers on the archive writer itself.
	defer agent.Close()

	if *connect != "" {
		if err := agent.Connect("tcp", *connect); err != nil {
			log.Error("ffrun: connect failed", "addr", *connect, "err", err)
			os.Exit(1)
		}
		log.Info("ffrun: connected", "addr", *connect, "node", *nodeName, "session", agent.SessionID())
	}

	// With no local weights, the controller must deploy an MC (ffserve
	// -deploy) before the stream can start.
	if mcName == "" {
		log.Info("ffrun: waiting for the controller to deploy a microclassifier")
		for len(agent.DeployedMCs(*stream)) == 0 {
			select {
			case <-agent.Done():
				// With -reconnect the agent redials and the controller
				// re-deploys on resume; only a non-resilient agent
				// gives up here.
				if !*reconnect {
					log.Error("ffrun: controller disconnected before deploying")
					os.Exit(1)
				}
				time.Sleep(100 * time.Millisecond)
			case <-time.After(100 * time.Millisecond):
			}
		}
		mcName = agent.DeployedMCs(*stream)[0]
		log.Info("ffrun: controller deployed", "mc", mcName)
	}

	dc := core.NewDatacenter()
	for i := 0; i < cfg.Frames; i++ {
		ups, err := agent.ProcessFrame(*stream, d.Frame(i))
		if err != nil {
			log.Error("ffrun: process frame failed", "frame", i, "err", err)
			os.Exit(1)
		}
		for _, u := range ups {
			fmt.Printf("upload: mc=%s event=%d frames=[%d,%d) bits=%d final=%v\n",
				u.MCName, u.EventID, u.Start, u.End, u.Bits, u.Final)
		}
		dc.ReceiveAll(ups)
	}
	ups, err := agent.Flush()
	if err != nil {
		log.Error("ffrun: flush failed", "err", err)
		os.Exit(1)
	}
	dc.ReceiveAll(ups)

	// Give in-flight acks a moment to land so the resilience line
	// reports steady state, not the race with the last upload.
	for end := time.Now().Add(2 * time.Second); ; {
		if p, _ := agent.PendingUploads(); p == 0 || time.Now().After(end) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if pending, dropped := agent.PendingUploads(); agent.Reconnects() > 0 || agent.Rehomes() > 0 || dropped > 0 || pending > 0 {
		fmt.Printf("fleet resilience   %d reconnects, %d shard re-homes (last shard %d), %d uploads awaiting ack, %d dropped by buffer cap\n",
			agent.Reconnects(), agent.Rehomes(), agent.Shard(), pending, dropped)
	}

	if vers := agent.MCVersions(*stream); len(vers) > 0 {
		names := make([]string, 0, len(vers))
		for name := range vers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("deployed model     %s v%d\n", name, vers[name])
		}
	}

	st := agent.Stats()
	fmt.Printf("\nframes processed   %d\n", st.Frames)
	fmt.Printf("uploads            %d (%d frames, %d bits)\n", st.Uploads, st.UploadedFrames, st.UploadedBits)
	fmt.Printf("average uplink     %.1f kb/s\n", st.AverageUploadBitrate(cfg.FPS)/1000)
	if s := observer.Frame.Summary(); s.Count > 0 {
		fmt.Printf("frame latency      p50 %s, p95 %s, p99 %s, max %s\n",
			time.Duration(s.P50), time.Duration(s.P95), time.Duration(s.P99), time.Duration(s.Max))
	}
	if s := observer.Extract.Summary(); s.Count > 0 {
		fmt.Printf("extract latency    p50 %s, p95 %s, p99 %s\n",
			time.Duration(s.P50), time.Duration(s.P95), time.Duration(s.P99))
	}
	if ast, ok := agent.ArchiveStats(*stream); ok {
		fmt.Printf("archive            %d frames in %d segments, %.1f MB on disk (%d bits coded)\n",
			ast.Frames, ast.Segments, float64(ast.Bytes)/1e6, ast.ArchivedBits)
		if ast.EvictedSegments > 0 {
			fmt.Printf("archive retention  %d segments evicted, %.1f MB reclaimed; oldest retained frame %d\n",
				ast.EvictedSegments, float64(ast.EvictedBytes)/1e6, ast.OldestFrame)
		}
		if st.DemandFetches > 0 {
			fmt.Printf("demand fetches     %d (%d bits served from disk)\n", st.DemandFetches, st.DemandFetchBits)
		}
	}
	if mcName != "" {
		pred := dc.PredictedLabels(*stream+"/"+mcName, cfg.Frames)
		r := metrics.Evaluate(d.Labels, pred)
		fmt.Printf("event precision    %.3f\n", r.Precision)
		fmt.Printf("event recall       %.3f\n", r.Recall)
		fmt.Printf("event F1           %.3f\n", r.F1)
	}
}
