// Command ffbench regenerates the paper's tables and figures. Each
// -experiment corresponds to one evaluation artifact (see DESIGN.md's
// per-experiment index):
//
//	datasets      Figure 3b (dataset details table)
//	bandwidth     Figure 4  (bandwidth vs event F1, both MC archs)
//	throughput    Figure 5  (throughput vs number of classifiers)
//	breakdown     Figure 6  (execution-time split, all three archs)
//	cost-accuracy Figure 7  (multiply-adds vs event F1, both datasets)
//	crop          §3.2 crop ablation
//	window-buffer §3.3.3 buffering ablation
//	multistream   concurrent edge runtime: streams × workers sweep
//	kernels       inference fast-path microbenchmark (ns/frame,
//	              allocs/frame, speedup vs reference kernels)
//	fleet         sharded control-plane soak on the simulated network
//	              (per-shard placement, ledgers, heartbeat quantiles,
//	              mid-run re-shard)
//	drift         semantic drift detection end to end: an induced
//	              brightness shift on one node must be flagged from
//	              heartbeat score sketches with zero false positives
//	              on a stationary control node
//	retrain       the closed loop: induced drift is detected,
//	              drifted frames are demand-fetched and labeled, the
//	              incumbent MC is fine-tuned into a versioned
//	              candidate, the canary evaluator promotes it, and a
//	              deliberately crippled candidate is rolled back
//	all           everything above
//
// -cpuprofile/-memprofile write pprof profiles of the run, which is
// how kernel-level regressions in the extraction fast path are
// localized (see README "Performance").
//
// Accuracy experiments train classifiers from scratch and take minutes
// at the default scale; use -train-frames/-test-frames/-epochs to
// trade fidelity for time.
//
// -parallel runs the throughput and breakdown measurements on the
// concurrent edge runtime: phase 2 fans MCs across -workers
// goroutines. Results are identical; timing changes. The multistream
// experiment always sweeps sequential vs -workers, and
// phased-pipelined always reports the fan-out schedule as one of its
// three columns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/filter"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "datasets|bandwidth|throughput|breakdown|cost-accuracy|crop|window-buffer|pooling-baseline|phased-pipelined|multistream|archive|kernels|fleet|drift|retrain|restart|all")
		width      = flag.Int("width", 96, "working-scale frame width")
		trainN     = flag.Int("train-frames", 1200, "training-day frames")
		testN      = flag.Int("test-frames", 1200, "test-day frames")
		epochs     = flag.Int("epochs", 8, "classifier training epochs")
		stride     = flag.Int("sample-stride", 1, "training-frame subsampling stride")
		seed       = flag.Int64("seed", 1, "master seed")
		parallel   = flag.Bool("parallel", false, "run performance experiments on the concurrent edge runtime (MC fan-out)")
		workers    = flag.Int("workers", 0, "worker-pool size for -parallel and the multistream sweep (0 = GOMAXPROCS)")
		streams    = flag.Int("streams", 4, "stream count for the multistream sweep (swept as 1,2,...,streams)")
		msFrames   = flag.Int("ms-frames", 30, "frames per stream in the multistream sweep")
		archFrames = flag.Int("archive-frames", 300, "frames appended in the archive benchmark")
		flAgents   = flag.Int("fleet-agents", 32, "edge agents in the fleet soak benchmark")
		flShards   = flag.Int("fleet-shards", 4, "initial controller shards in the fleet soak benchmark")
		flResize   = flag.Int("fleet-resize", 6, "shard count after the fleet soak's mid-run resize")
		flFrames   = flag.Int("fleet-frames", 8, "frames each agent filters in the fleet soak benchmark")
		drFrames   = flag.Int("drift-frames", 96, "per-phase frame budget in the drift detection benchmark")
		rtFrames   = flag.Int("retrain-frames", 96, "per-phase frame budget in the retraining loop benchmark")
		rsFrames   = flag.Int("restart-frames", 24, "frames each agent filters in the controller-restart benchmark")
		kernFrames = flag.Int("kernel-frames", 200, "frames timed per path in the kernels benchmark")
		jsonPath   = flag.String("json", "", "write machine-readable results (per-experiment data + wall times) to this path")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
		quiet      = flag.Bool("quiet", false, "suppress progress logging")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ffbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// This defer runs before the cpuprofile defers (LIFO), so it
		// must flush the CPU profile itself before any error exit.
		defer func() {
			exit := func(err error) {
				fmt.Fprintln(os.Stderr, "ffbench: memprofile:", err)
				pprof.StopCPUProfile()
				os.Exit(1)
			}
			f, err := os.Create(*memProfile)
			if err != nil {
				exit(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				exit(err)
			}
		}()
	}

	o := experiments.Options{
		WorkingWidth: *width,
		TrainFrames:  *trainN, TestFrames: *testN,
		Epochs: *epochs, SampleStride: *stride,
		Seed: *seed, Verbose: !*quiet,
		Parallel: *parallel, Workers: *workers,
	}
	w := os.Stdout

	// The JSON report collects every experiment's structured result
	// (the same structs the tests consume) plus wall-clock timings, so
	// the perf trajectory can be tracked across commits (BENCH_*.json).
	report := struct {
		Options     experiments.Options `json:"options"`
		Results     map[string]any      `json:"results"`
		WallSeconds map[string]float64  `json:"wall_seconds"`
	}{Options: o, Results: map[string]any{}, WallSeconds: map[string]float64{}}
	record := func(key string, result any) {
		if result != nil {
			report.Results[key] = result
		}
	}

	run := func(name string, fn func() error) {
		fmt.Fprintf(w, "=== %s ===\n", name)
		t0 := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "ffbench: %s: %v\n", name, err)
			pprof.StopCPUProfile() // flush a partial profile before exiting
			os.Exit(1)
		}
		report.WallSeconds[name] = time.Since(t0).Seconds()
	}

	want := func(name string) bool { return *experiment == name || *experiment == "all" }

	if want("datasets") {
		run("datasets (Figure 3b)", func() error {
			record("datasets", experiments.Datasets(w, o))
			return nil
		})
	}
	if want("cost-accuracy") {
		run("cost-accuracy (Figure 7)", func() error {
			for _, ds := range []string{"jackson", "roadway"} {
				res, err := experiments.CostAccuracy(w, o, ds)
				if err != nil {
					return err
				}
				record("cost-accuracy/"+ds, res)
			}
			return nil
		})
	}
	if want("bandwidth") {
		run("bandwidth (Figure 4)", func() error {
			sweep := []float64{8_000, 15_000, 30_000, 60_000, 120_000, 240_000}
			res, err := experiments.Bandwidth(w, o, filter.FullFrameObjectDetector, 30_000, sweep)
			if err != nil {
				return err
			}
			record("bandwidth/detector", res)
			res, err = experiments.Bandwidth(w, o, filter.LocalizedBinary, 60_000, sweep)
			if err != nil {
				return err
			}
			record("bandwidth/localized", res)
			return nil
		})
	}
	if want("throughput") {
		run("throughput (Figure 5)", func() error {
			res, err := experiments.Throughput(w, o, []int{1, 2, 4, 8, 16, 32, 50}, 10)
			if err != nil {
				return err
			}
			record("throughput", res)
			return nil
		})
	}
	if want("breakdown") {
		run("breakdown (Figure 6)", func() error {
			for _, arch := range []filter.Arch{filter.FullFrameObjectDetector, filter.LocalizedBinary, filter.WindowedLocalizedBinary} {
				res, err := experiments.Breakdown(w, o, arch, []int{1, 2, 5, 10, 25, 50}, 8)
				if err != nil {
					return err
				}
				record(fmt.Sprintf("breakdown/%v", arch), res)
			}
			return nil
		})
	}
	if want("crop") {
		run("crop ablation (§3.2)", func() error {
			res, err := experiments.CropAblation(w, o, "roadway")
			if err != nil {
				return err
			}
			record("crop", res)
			return nil
		})
	}
	if want("pooling-baseline") {
		run("pooling-classifier baseline (§5.2.2)", func() error {
			res, err := experiments.PoolingBaseline(w, o, "roadway")
			if err != nil {
				return err
			}
			record("pooling-baseline", res)
			return nil
		})
	}
	if want("phased-pipelined") {
		run("phased vs pipelined execution (§4.4)", func() error {
			res, err := experiments.PhasedVsPipelined(w, o, 8, 30)
			if err != nil {
				return err
			}
			record("phased-pipelined", res)
			return nil
		})
	}
	if want("window-buffer") {
		run("window-buffer ablation (§3.3.3)", func() error {
			res, err := experiments.WindowBufferAblation(w, o, 40)
			if err != nil {
				return err
			}
			record("window-buffer", res)
			return nil
		})
	}
	if want("multistream") {
		run("multistream scheduler scaling (§3.2)", func() error {
			if *streams < 1 {
				return fmt.Errorf("-streams must be >= 1, got %d", *streams)
			}
			var sweep []int
			for s := 1; s <= *streams; s *= 2 {
				sweep = append(sweep, s)
			}
			if len(sweep) == 0 || sweep[len(sweep)-1] != *streams {
				sweep = append(sweep, *streams)
			}
			res, err := experiments.MultiStreamScaling(w, o, sweep, nil, *msFrames)
			if err != nil {
				return err
			}
			record("multistream", res)
			return nil
		})
	}
	if want("kernels") {
		run("kernels (inference fast path)", func() error {
			res, err := experiments.Kernels(w, o, *kernFrames)
			if err != nil {
				return err
			}
			record("kernels", res)
			return nil
		})
	}
	if want("archive") {
		run("archive store (persistent demand-fetch)", func() error {
			res, err := experiments.Archive(w, o, *archFrames)
			if err != nil {
				return err
			}
			record("archive", res)
			return nil
		})
	}
	if want("fleet") {
		run("fleet (sharded control-plane soak)", func() error {
			res, err := experiments.FleetSoak(w, o, *flAgents, *flShards, *flResize, *flFrames)
			if err != nil {
				return err
			}
			record("fleet", res)
			return nil
		})
	}
	if want("drift") {
		run("drift (fleet-wide semantic drift detection)", func() error {
			res, err := experiments.Drift(w, o, *drFrames)
			if err != nil {
				return err
			}
			record("drift", res)
			return nil
		})
	}

	if want("retrain") {
		run("retrain (drift-triggered retraining with canary rollout)", func() error {
			res, err := experiments.Retrain(w, o, *rtFrames)
			if err != nil {
				return err
			}
			record("retrain", res)
			return nil
		})
	}

	if want("restart") {
		run("restart (durable control plane crash recovery)", func() error {
			res, err := experiments.Restart(w, o, *rsFrames)
			if err != nil {
				return err
			}
			record("restart", res)
			return nil
		})
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ffbench: encode json:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ffbench: write json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "wrote %s\n", *jsonPath)
	}
}
