// Command ffserve runs the datacenter side of FilterForward as a
// network service: the fleet controller accepts edge sessions (see
// ffrun -connect; legacy v1 upload pipes still work), optionally
// deploys a microclassifier to every node that connects, demand-
// fetches event context from edge archives, and periodically prints
// the fleet registry and per-application upload summaries.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/vision"
)

// contextArchiver persists demand-fetched context video into
// datacenter-side archive stores, one per node/stream. Each fetch's
// frames land contiguously and in frame order; concurrent fetches of
// the same stream are serialized in completion order (the store
// assigns its own append indices — the stream-range attribution for
// each fetch is in ffserve's "fetched context" log lines). It gives
// operators a reviewable on-disk record of every piece of context
// the controller pulled, bounded by the same retention policy the
// edges use.
type contextArchiver struct {
	dir    string
	budget int64

	mu     sync.Mutex // guards stores AND serializes Save's append loop
	stores map[string]*archive.Store
}

func newContextArchiver(dir string, budget int64) *contextArchiver {
	return &contextArchiver{dir: dir, budget: budget, stores: make(map[string]*archive.Store)}
}

// Save appends fetched frames under the node/stream's store, spreading
// the fetch's coded-bit accounting evenly across them. Saves are
// serialized so each fetch's frames stay contiguous on disk.
func (c *contextArchiver) Save(node, stream string, frames []*vision.Image, bits int64) error {
	if len(frames) == 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := node + "/" + stream
	st, ok := c.stores[key]
	if !ok {
		var err error
		st, err = archive.Open(archive.Config{
			Dir:    filepath.Join(c.dir, node, stream),
			Width:  frames[0].W,
			Height: frames[0].H,
			Budget: c.budget,
		})
		if err != nil {
			return err
		}
		c.stores[key] = st
	}
	perFrame := bits / int64(len(frames))
	for _, f := range frames {
		if _, err := st.Append(f, perFrame); err != nil {
			return err
		}
	}
	return st.Sync()
}

func (c *contextArchiver) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.stores {
		st.Close()
	}
}

func main() {
	var (
		addr     = flag.String("listen", "127.0.0.1:7004", "listen address")
		interval = flag.Duration("interval", 5*time.Second, "summary interval")
		frames   = flag.Int("frames", 2000, "stream length assumed when printing coverage")
		hbMiss   = flag.Int("heartbeat-miss", 5, "evict a session after this many missed heartbeat intervals (0 disables liveness eviction)")
		shards   = flag.Int("shards", 1, "controller shards; nodes are placed by consistent hashing and per-shard summaries are merged into the fleet rollup")

		stateDir = flag.String("state-dir", "", "persist per-shard control-plane state (intent, ledgers, canary records) under this directory and recover it on restart (empty keeps state in memory)")
		walSync  = flag.Bool("wal-sync", false, "fsync every wal append (survives machine power loss; default page-cache durability survives process crashes)")

		deploy    = flag.String("deploy", "", "MC weights file (from fftrain) to deploy to every connecting node")
		deployTo  = flag.String("deploy-stream", "", "stream to deploy onto (default: each node's first advertised stream)")
		threshold = flag.Float64("threshold", 0.5, "decision threshold for -deploy")

		fetchCtx     = flag.Int("fetch-context", 0, "frames of archived context to demand-fetch before each completed event (0 disables)")
		fetchBitrate = flag.Float64("fetch-bitrate", 30_000, "demand-fetch re-encode bitrate (b/s)")

		archiveDir    = flag.String("archive-dir", "", "persist demand-fetched context frames into per-node/stream archive stores under this directory")
		archiveBudget = flag.Int64("archive-budget", 0, "per-stream byte budget for -archive-dir stores (0 = unbounded; oldest segments evicted first)")

		debugAddr = flag.String("debug-addr", "", "serve /metrics, /healthz, /debug/health, /debug/trace.json, and /debug/pprof on this address (empty disables)")
		logJSON   = flag.Bool("log-json", false, "emit structured logs as JSON lines")
		sloSpec   = flag.String("slo", "", "SLO threshold overrides as name=warn[:crit] or name=off, comma-separated (e.g. \"extract_p99_ms=20:100,drift_psi=0.1\"); empty keeps the defaults")
	)
	flag.Parse()
	log := obs.NewLogger(os.Stderr, *logJSON, slog.LevelInfo)

	// The controller-side observer carries fleet rollup gauges (updated
	// every summary tick from heartbeat data) rather than hot-path
	// histograms; -debug-addr exposes it alongside pprof.
	observer := obs.NewObserver(obs.Options{Log: log})
	describeFleetGauges(observer.Reg)
	sloRules, err := health.Parse(*sloSpec, fleetSLOs())
	if err != nil {
		log.Error("ffserve: bad -slo spec", "spec", *sloSpec, "err", err)
		os.Exit(1)
	}
	ht := &healthTick{eng: health.New(sloRules), log: log}
	if *debugAddr != "" {
		mux := obs.NewDebugMux(observer)
		ht.eng.Register(mux)
		dbg, err := obs.ServeMux(*debugAddr, mux)
		if err != nil {
			log.Error("ffserve: debug server failed", "err", err)
			os.Exit(1)
		}
		defer dbg.Close()
		log.Info("ffserve: debug server listening",
			"addr", dbg.Addr, "endpoints", "/metrics /healthz /debug/health /debug/trace.json /debug/pprof/")
	}

	var ctxArchive *contextArchiver
	if *archiveDir != "" {
		ctxArchive = newContextArchiver(*archiveDir, *archiveBudget)
		defer ctxArchive.Close()
	}

	var mcBytes []byte
	if *deploy != "" {
		var err error
		mcBytes, err = os.ReadFile(*deploy)
		if err != nil {
			log.Error("ffserve: read deploy weights failed", "file", *deploy, "err", err)
			os.Exit(1)
		}
	}

	var ctrl *fleet.Controller
	cfg := fleet.ControllerConfig{
		HeartbeatMiss: *hbMiss,
		Shards:        *shards,
		Log:           log,
		OnSession: func(s *fleet.Session) {
			log.Info("ffserve: node joined",
				"session", s.ID(), "node", s.Node(),
				"resumed", s.Resumed(), "streams", len(s.Streams()))
			streams := s.Streams()
			if mcBytes == nil || len(streams) == 0 || s.Resumed() {
				// Resumed sessions are reconciled against recorded
				// intent; re-deploying here would only be rejected as
				// a duplicate.
				return
			}
			target := *deployTo
			if target == "" {
				target = streams[0].Name
			}
			// Controller.Deploy records intent, so the node gets the
			// MC re-pushed if it ever comes back without it.
			if err := ctrl.Deploy(s.Node(), target, mcBytes, float32(*threshold)); err != nil {
				log.Error("ffserve: deploy failed", "node", s.Node(), "stream", target, "err", err)
				return
			}
			log.Info("ffserve: deployed",
				"weights", *deploy, "node", s.Node(), "stream", target, "threshold", *threshold)
		},
		OnUpload: func(s *fleet.Session, up core.Upload) {
			if *fetchCtx <= 0 || !up.Final {
				return
			}
			stream, _ := splitStream(up.MCName)
			lo := up.Start - *fetchCtx
			if lo < 0 {
				lo = 0
			}
			if lo >= up.Start || stream == "" {
				return
			}
			// Round trips must not run on the session's reader
			// goroutine.
			go func() {
				// With an archive dir the pixels come back over the
				// wire and land in the datacenter-side context store;
				// otherwise only the accounting crosses.
				var resp fleet.FetchResponse
				var frames []*vision.Image
				var err error
				if ctxArchive != nil {
					frames, resp, err = s.FetchFrames(stream, lo, up.Start, *fetchBitrate)
				} else {
					resp, err = s.Fetch(stream, lo, up.Start, *fetchBitrate)
				}
				if err != nil {
					log.Error("ffserve: fetch context failed",
						"mc", up.MCName, "start", lo, "end", up.Start, "err", err)
					return
				}
				if ctxArchive != nil {
					if err := ctxArchive.Save(s.Node(), stream, frames, resp.Bits); err != nil {
						log.Error("ffserve: archive context failed",
							"node", s.Node(), "stream", stream, "err", err)
					}
				}
				log.Info("ffserve: fetched context",
					"mc", up.MCName, "event", up.EventID,
					"start", resp.Start, "end", resp.End, "bits", resp.Bits)
			}()
		},
	}
	// OpenController replays the state dir (and logs the recovery
	// stats) before accepting any session.
	cfg.StateDir = *stateDir
	cfg.WALSync = *walSync
	ctrl, _, err = fleet.OpenController(cfg)
	if err != nil {
		log.Error("ffserve: open controller failed", "state-dir", *stateDir, "err", err)
		os.Exit(1)
	}
	bound, err := ctrl.Listen("tcp", *addr)
	if err != nil {
		log.Error("ffserve: listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	log.Info("ffserve: listening", "addr", bound.String(), "protocols", "v2 + legacy v1")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ht.interval = *interval
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			printSummary(ctrl, *frames, observer, ht)
		case <-stop:
			log.Info("ffserve: shutting down")
			ctrl.Close()
			return
		}
	}
}

// fleetSLOs is ffserve's declared SLO set over the rollup signals the
// summary tick computes. Signal units are milliseconds for latencies,
// counts for the backlog, per-minute for eviction churn, and raw
// statistic values for the drift scores; -slo overrides the
// thresholds without changing the signal wiring.
func fleetSLOs() []health.Rule {
	return []health.Rule{
		{Name: "extract_p99_ms", Signal: "extract_p99_ms", Warn: 50, Crit: 250, For: 2, ClearFor: 2},
		{Name: "hb_gap_p95_ms", Signal: "hb_gap_p95_ms", Warn: 2000, Crit: 10_000, For: 2, ClearFor: 2},
		{Name: "upload_backlog", Signal: "upload_backlog", Warn: 64, Crit: 512, For: 2, ClearFor: 2},
		{Name: "evictions_per_min", Signal: "evictions_per_min", Warn: 2, Crit: 10, ClearFor: 2},
		{Name: "drift_psi", Signal: "drift_psi", Warn: fleet.DefaultDriftPSI, Crit: 2 * fleet.DefaultDriftPSI, ClearFor: 2},
		{Name: "drift_ks", Signal: "drift_ks", Warn: fleet.DefaultDriftKS, ClearFor: 2},
	}
}

// healthTick folds one summary interval's fleet rollup into the SLO
// engine. Signals without data this tick (no instrumented nodes, no
// heartbeats yet) are omitted rather than zeroed, so their rules hold
// state instead of flapping.
type healthTick struct {
	eng      *health.Engine
	interval time.Duration
	log      *slog.Logger
	// lastEvicted/started derive the eviction rate from consecutive
	// lifecycle totals.
	lastEvicted int
	started     bool
}

func (h *healthTick) eval(sum metrics.FleetSummary, stats []fleet.ShardStat, evicted int) health.Status {
	signals := make(map[string]float64)
	if sum.Nodes > 0 {
		signals["upload_backlog"] = float64(sum.PendingUploads)
		signals["drift_psi"] = sum.MaxDriftPSI
		signals["drift_ks"] = sum.MaxDriftKS
	}
	if sum.ExtractLat.Count > 0 {
		signals["extract_p99_ms"] = float64(sum.ExtractLat.P99) / 1e6
	}
	var gap int64
	for _, s := range stats {
		if s.HeartbeatGap.Count > 0 && s.HeartbeatGap.P95 > gap {
			gap = s.HeartbeatGap.P95
		}
	}
	if gap > 0 {
		signals["hb_gap_p95_ms"] = float64(gap) / 1e6
	}
	if h.started && h.interval > 0 {
		signals["evictions_per_min"] = float64(evicted-h.lastEvicted) / h.interval.Minutes()
	}
	h.lastEvicted, h.started = evicted, true
	status, alerts := h.eng.Eval(signals)
	for _, a := range alerts {
		if a.Status == health.Healthy {
			h.log.Info("ffserve: slo recovered", "rule", a.Rule, "value", a.Value)
		} else {
			h.log.Warn("ffserve: slo breached",
				"rule", a.Rule, "status", a.Status.String(), "value", a.Value, "threshold", a.Threshold)
		}
	}
	return status
}

// printSummary prints the fleet registry, the uplink rollup (including
// the heartbeat-carried latency tails), drift status, and the
// per-application upload summaries, all deterministically sorted. It
// also evaluates the SLO engine for the tick and refreshes the
// observer's fleet gauges, so -debug-addr's /metrics and /healthz
// track the same rollup the console shows.
func printSummary(ctrl *fleet.Controller, frames int, observer *obs.Observer, ht *healthTick) {
	nodes := ctrl.ListNodes()
	// Application summaries are read under the controller's lock so
	// they are consistent against concurrent session uploads.
	type appLine struct {
		name    string
		covered int
		bits    int64
		events  int
	}
	var apps []appLine
	ctrl.WithDatacenter(func(dc *core.Datacenter) {
		for _, name := range dc.KnownApplications() { // sorted
			covered := 0
			for _, l := range dc.PredictedLabels(name, frames) {
				if l {
					covered++
				}
			}
			apps = append(apps, appLine{name, covered, dc.TotalBits(name), len(dc.Events(name))})
		}
	})
	// The fleet view is the cross-shard rollup: each shard summarizes
	// its own sessions' heartbeat loads, and the summaries merge. This
	// is exactly what a multi-process deployment would do — no code
	// path here ever needs the flattened fleet-wide load list.
	perShard := ctrl.ShardLoads()
	summaries := make([]metrics.FleetSummary, 0, len(perShard))
	for _, l := range perShard {
		summaries = append(summaries, metrics.SummarizeFleet(l))
	}
	stats := ctrl.ShardStats()
	sum := metrics.MergeFleet(summaries)
	// Lifecycle totals come from the controller's durable node
	// records, not the live-session loads: an evicted node with no
	// current session is exactly the one that must not vanish from
	// the rollup.
	ev, rc := ctrl.Lifecycle()
	// The SLO engine runs every tick, connected nodes or not: rules
	// must keep their hysteresis state (and the eviction-rate window
	// its baseline) across idle intervals.
	status := health.Healthy
	if ht != nil {
		status = ht.eval(sum, stats, ev)
	}
	if observer != nil {
		observer.Reg.Gauge("ff_fleet_health").Set(int64(status))
	}

	if len(nodes) == 0 && len(apps) == 0 && ctrl.LegacyReceived() == 0 {
		return
	}

	fmt.Printf("-- %d node(s) connected --\n", len(nodes))
	for _, n := range nodes {
		fmt.Printf("  session %-3d %-16s shard %d, %d stream(s), %d uploads\n",
			n.ID, n.Node, n.Shard, len(n.Streams), n.Uploads)
		for _, si := range n.Streams {
			st := n.Heartbeat.Streams[si.Name]
			fmt.Printf("    %-20s %dx%d@%d  %6d frames, %8d bits uplinked\n",
				si.Name, si.Width, si.Height, si.FPS, st.Frames, st.UploadedBits)
		}
	}
	if len(stats) > 1 {
		for _, s := range stats {
			fmt.Printf("  shard %d: %d node(s), %d session(s), %d ledger uploads, %d redirects, hb gap p95 %s\n",
				s.Shard, s.Nodes, s.Sessions, s.Uploads, s.Redirects,
				time.Duration(s.HeartbeatGap.P95))
		}
	}
	if observer != nil {
		updateShardGauges(observer, stats)
	}
	if ht != nil {
		printHealthLine(ht.eng, status)
	}
	if sum.Frames > 0 {
		fmt.Printf("  fleet: %d uploads, %d bits, avg %.1f kb/s, hottest %s at %.1f kb/s\n",
			sum.Uploads, sum.UploadedBits, sum.AverageBitrate/1000, sum.MaxNode, sum.MaxNodeBitrate/1000)
		// The tails are worst-case merges across nodes: if these look
		// fine, every node's tails are fine.
		if sum.ExtractLat.Count > 0 {
			fmt.Printf("  fleet latency: extract p50 %s p95 %s p99 %s; mc push p95 %s; queue wait p95 %s\n",
				time.Duration(sum.ExtractLat.P50), time.Duration(sum.ExtractLat.P95),
				time.Duration(sum.ExtractLat.P99), time.Duration(sum.MCPushLat.P95),
				time.Duration(sum.QueueWaitLat.P95))
		}
		if sum.UploadRTTLat.Count > 0 {
			fmt.Printf("  fleet upload rtt: p50 %s p95 %s p99 %s (max %s)\n",
				time.Duration(sum.UploadRTTLat.P50), time.Duration(sum.UploadRTTLat.P95),
				time.Duration(sum.UploadRTTLat.P99), time.Duration(sum.UploadRTTLat.Max))
		}
		// Drift status comes from the same rollup the gauges export:
		// the worst recent window and how many (stream, MC) pairs are
		// currently flagged.
		if sum.Scores.Count > 0 {
			fmt.Printf("  fleet drift: %d score obs, pass rate %.3f, worst psi %.3f (%s), worst ks %.3f, %d pair(s) drifted\n",
				sum.Scores.Count, sum.Scores.PassRate(), sum.MaxDriftPSI, sum.MaxDriftNode, sum.MaxDriftKS, sum.Drifted)
		}
		if sum.MaxMCVersion > 0 || sum.CanariesActive+sum.CanariesPromoted+sum.CanariesRolledBack+sum.CanariesExpired > 0 {
			fmt.Printf("  fleet models: max version %d; canaries %d active, %d promoted, %d rolled back, %d expired\n",
				sum.MaxMCVersion, sum.CanariesActive, sum.CanariesPromoted, sum.CanariesRolledBack, sum.CanariesExpired)
		}
		if ev > 0 || rc > 0 {
			fmt.Printf("  fleet lifecycle: %d session(s) evicted, %d reconnect(s)\n", ev, rc)
		}
		if observer != nil {
			sum.Evicted, sum.Reconnects = ev, rc
			updateFleetGauges(observer, sum)
		}
		if sum.ArchiveBytes > 0 || sum.ArchiveEvictedSegments > 0 {
			fmt.Printf("  edge archives: %.1f MB on disk, %d segments evicted (%.1f MB reclaimed)\n",
				float64(sum.ArchiveBytes)/1e6, sum.ArchiveEvictedSegments, float64(sum.ArchiveEvictedBytes)/1e6)
		}
	}
	if legacy := ctrl.LegacyReceived(); legacy > 0 {
		fmt.Printf("  legacy v1: %d uploads\n", legacy)
	}

	for _, a := range apps {
		fmt.Printf("  %-32s %6d frames, %8d bits, %d events\n",
			a.name, a.covered, a.bits, a.events)
	}
}

// updateFleetGauges mirrors the fleet rollup into the observer's
// registry, so /metrics exposes what the console summary prints.
func updateFleetGauges(o *obs.Observer, sum metrics.FleetSummary) {
	o.Reg.Gauge("ff_fleet_nodes").Set(int64(sum.Nodes))
	o.Reg.Gauge("ff_fleet_frames").Set(int64(sum.Frames))
	o.Reg.Gauge("ff_fleet_uploads").Set(int64(sum.Uploads))
	o.Reg.Gauge("ff_fleet_uploaded_bits").Set(sum.UploadedBits)
	o.Reg.Gauge("ff_fleet_evicted_sessions").Set(int64(sum.Evicted))
	o.Reg.Gauge("ff_fleet_reconnects").Set(int64(sum.Reconnects))
	o.Reg.Gauge("ff_fleet_extract_p95_ns").Set(sum.ExtractLat.P95)
	o.Reg.Gauge("ff_fleet_extract_p99_ns").Set(sum.ExtractLat.P99)
	o.Reg.Gauge("ff_fleet_mc_push_p95_ns").Set(sum.MCPushLat.P95)
	o.Reg.Gauge("ff_fleet_queue_wait_p95_ns").Set(sum.QueueWaitLat.P95)
	o.Reg.Gauge("ff_fleet_upload_rtt_p95_ns").Set(sum.UploadRTTLat.P95)
	o.Reg.Gauge("ff_fleet_pending_uploads").Set(int64(sum.PendingUploads))
	// Drift gauges scale the float statistics by 1e3 (gauges are
	// integers): ff_fleet_drift_score 250 == PSI 0.25.
	o.Reg.Gauge("ff_fleet_drift_score").Set(int64(sum.MaxDriftPSI * 1000))
	o.Reg.Gauge("ff_fleet_drift_ks").Set(int64(sum.MaxDriftKS * 1000))
	o.Reg.Gauge("ff_fleet_drift_pairs").Set(int64(sum.Drifted))
	o.Reg.Gauge("ff_fleet_score_observations").Set(int64(sum.Scores.Count))
	o.Reg.Gauge("ff_fleet_mc_version").Set(int64(sum.MaxMCVersion))
	o.Reg.Gauge("ff_fleet_canary_active").Set(int64(sum.CanariesActive))
	o.Reg.Gauge("ff_fleet_canary_promoted").Set(int64(sum.CanariesPromoted))
	o.Reg.Gauge("ff_fleet_canary_rolled_back").Set(int64(sum.CanariesRolledBack))
	o.Reg.Gauge("ff_fleet_canary_expired").Set(int64(sum.CanariesExpired))
}

// describeFleetGauges registers HELP text for the summary-tick gauges
// so /metrics documents them (the hot-path instruments are described
// by NewObserver).
func describeFleetGauges(reg *obs.Registry) {
	for name, help := range map[string]string{
		"ff_fleet_health":             "SLO engine overall status (0 healthy, 1 degraded, 2 critical)",
		"ff_fleet_pending_uploads":    "edge-side upload backlog awaiting controller acks",
		"ff_fleet_drift_score":        "worst per-stream PSI drift score across the fleet, scaled by 1e3",
		"ff_fleet_drift_ks":           "worst per-stream binned KS drift score across the fleet, scaled by 1e3",
		"ff_fleet_drift_pairs":        "(stream, MC) pairs currently above a drift alert threshold",
		"ff_fleet_score_observations": "MC score observations aggregated across the fleet",
		"ff_fleet_mc_version":         "highest deployed MC model version across the fleet",
		"ff_fleet_canary_active":      "canary candidates currently under shadow evaluation",
		"ff_fleet_canary_promoted":    "canary candidates promoted into the live slot (recorded verdicts)",
		"ff_fleet_canary_rolled_back": "canary candidates rolled back on regression (recorded verdicts)",
		"ff_fleet_canary_expired":     "canary candidates expired undecided (recorded verdicts)",
	} {
		reg.Describe(name, help)
	}
}

// printHealthLine prints the tick's SLO outcome: the overall status
// and, when not healthy, the firing rules with their current values.
func printHealthLine(eng *health.Engine, status health.Status) {
	if status == health.Healthy {
		fmt.Println("  health: ok")
		return
	}
	_, rules := eng.Status()
	line := "  health: " + status.String()
	for _, rs := range rules {
		if rs.Status != health.Healthy {
			line += fmt.Sprintf(" [%s %.3g]", rs.Rule.Name, rs.Value)
		}
	}
	fmt.Println(line)
}

// updateShardGauges mirrors per-shard load and heartbeat-cadence
// stats into ff_fleet_shard_<i>_* gauges, the balance view that shows
// a hot or empty shard at a glance.
func updateShardGauges(o *obs.Observer, stats []fleet.ShardStat) {
	o.Reg.Gauge("ff_fleet_shards").Set(int64(len(stats)))
	for _, s := range stats {
		o.Reg.ShardGauge(s.Shard, "nodes").Set(int64(s.Nodes))
		o.Reg.ShardGauge(s.Shard, "sessions").Set(int64(s.Sessions))
		o.Reg.ShardGauge(s.Shard, "ledger_uploads").Set(int64(s.Uploads))
		o.Reg.ShardGauge(s.Shard, "ledger_bits").Set(s.UploadBits)
		o.Reg.ShardGauge(s.Shard, "redirects").Set(int64(s.Redirects))
		o.Reg.ShardGauge(s.Shard, "hb_gap_p95_ns").Set(s.HeartbeatGap.P95)
	}
}

// splitStream splits a "stream/mc" upload name into its parts; the
// stream is empty when the name carries no prefix.
func splitStream(mcName string) (stream, mc string) {
	for i := 0; i < len(mcName); i++ {
		if mcName[i] == '/' {
			return mcName[:i], mcName[i+1:]
		}
	}
	return "", mcName
}
