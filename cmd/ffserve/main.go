// Command ffserve runs the datacenter side of FilterForward as a
// network service: it listens for edge connections (see ffrun
// -connect) and periodically prints per-application upload summaries.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

func main() {
	var (
		addr     = flag.String("listen", "127.0.0.1:7004", "listen address")
		interval = flag.Duration("interval", 5*time.Second, "summary interval")
		frames   = flag.Int("frames", 2000, "stream length assumed when printing coverage")
	)
	flag.Parse()

	dc := core.NewDatacenter()
	srv := transport.NewServer(dc)
	bound, err := srv.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ffserve:", err)
		os.Exit(1)
	}
	fmt.Printf("ffserve: listening on %s\n", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	seen := 0
	for {
		select {
		case <-tick.C:
			if srv.Received() == seen {
				continue
			}
			seen = srv.Received()
			fmt.Printf("-- %d uploads received --\n", seen)
			names := collectNames(dc, *frames)
			for _, name := range names {
				labels := dc.PredictedLabels(name, *frames)
				covered := 0
				for _, l := range labels {
					if l {
						covered++
					}
				}
				fmt.Printf("  %-32s %6d frames, %8d bits, %d events\n",
					name, covered, dc.TotalBits(name), len(dc.Events(name)))
			}
		case <-stop:
			fmt.Println("ffserve: shutting down")
			srv.Close()
			return
		}
	}
}

// collectNames lists application names that have uploads, sorted.
func collectNames(dc *core.Datacenter, frames int) []string {
	_ = frames
	return dc.KnownApplications()
}
