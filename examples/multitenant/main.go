// Multitenant: FilterForward's key contribution — many applications
// sharing one base-DNN execution on one edge node.
//
// Deploys a dozen microclassifiers (all three Figure 2 architectures,
// tapping two different base-DNN stages, with different crops) on a
// single stream and reports the per-frame time split: the base DNN
// runs once, each extra MC adds only its small marginal cost (§4.4).
//
// Run with: go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/filter"
	"repro/internal/mobilenet"
)

func main() {
	d := dataset.Generate(dataset.Jackson(96, 120, 1))
	cfg := d.Cfg
	base := mobilenet.New(mobilenet.Config{WidthMult: 0.25, BatchNorm: true, Seed: 42})

	edge, err := core.NewEdgeNode(core.Config{
		FrameWidth: cfg.Width, FrameHeight: cfg.Height, FPS: cfg.FPS,
		Base: base, UploadBitrate: 50_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Twelve tenants: four of each architecture, alternating between
	// full-frame and region-cropped deployments.
	archs := []filter.Arch{
		filter.FullFrameObjectDetector,
		filter.LocalizedBinary,
		filter.WindowedLocalizedBinary,
		filter.PoolingClassifier,
	}
	region := cfg.Region()
	for i := 0; i < 12; i++ {
		spec := filter.Spec{
			Name: fmt.Sprintf("app-%02d-%s", i, archs[i%len(archs)]),
			Arch: archs[i%len(archs)],
			Seed: int64(100 + i),
		}
		if i%2 == 1 {
			crop := region
			spec.Crop = &crop
		}
		mc, err := filter.NewMC(spec, base, cfg.Width, cfg.Height)
		if err != nil {
			log.Fatal(err)
		}
		// Untrained MCs with an unreachable threshold: this example
		// measures compute sharing, not accuracy.
		if err := edge.Deploy(mc, 2); err != nil {
			log.Fatal(err)
		}
	}

	for i := 0; i < cfg.Frames; i++ {
		if _, err := edge.ProcessFrame(d.Frame(i)); err != nil {
			log.Fatal(err)
		}
	}

	st := edge.Stats()
	perFrameBase := st.BaseDNNTime.Seconds() / float64(st.Frames)
	perFrameMCs := st.MCTime.Seconds() / float64(st.Frames)
	fmt.Printf("%d tenants on one stream, %d frames\n", len(edge.MCNames()), st.Frames)
	fmt.Printf("base DNN:  %.4f s/frame (paid once, shared by all tenants)\n", perFrameBase)
	fmt.Printf("all MCs:   %.4f s/frame (total marginal cost)\n", perFrameMCs)
	fmt.Printf("per MC:    %.5f s/frame average\n", perFrameMCs/12)
	fmt.Println("\nper-tenant marginal time:")
	for _, name := range edge.MCNames() {
		fmt.Printf("  %-36s %.5f s/frame\n", name, st.MCTimeBy[name].Seconds()/float64(st.Frames))
	}
	naive := (perFrameBase + perFrameMCs/12) * 12
	fmt.Printf("\nwithout sharing, 12 tenants would cost ~%.4f s/frame; sharing costs %.4f (%.1fx better)\n",
		naive, perFrameBase+perFrameMCs, naive/(perFrameBase+perFrameMCs))
}
