// Redclothing: the paper's Roadway scenario, plus demand-fetch.
//
// Trains the People-with-red microclassifier, filters the test day on
// the edge, then demand-fetches context video around the first
// detected event from the edge node's archive (§3.2) — the workflow a
// datacenter application uses when it wants more than the matched
// frames.
//
// Run with: go run ./examples/redclothing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/mobilenet"
	"repro/internal/pretrain"
	"repro/internal/tensor"
	"repro/internal/train"
	"repro/internal/vision"
)

func main() {
	trainDay := dataset.Generate(dataset.Roadway(96, 900, 1))
	testDay := dataset.Generate(dataset.Roadway(96, 900, 2))
	cfg := trainDay.Cfg

	fmt.Println("pretraining base DNN ...")
	base := mobilenet.New(mobilenet.Config{WidthMult: 0.25, BatchNorm: true, Seed: 42})
	if _, err := pretrain.Run(base, pretrain.Config{Seed: 43}); err != nil {
		log.Fatal(err)
	}

	// The red garment is a fine-grained color detail, so the MC taps
	// an early stage (§3.4: "too late a layer may not be able to
	// observe small details").
	crop := cfg.Region()
	mc, err := filter.NewMC(filter.Spec{
		Name: "people-with-red", Arch: filter.LocalizedBinary,
		Stage: "conv2_2/sep", Crop: &crop, Seed: 7,
	}, base, cfg.Width, cfg.Height)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training ...")
	fms := make([]*tensor.Tensor, cfg.Frames)
	for i := range fms {
		fm, err := base.Extract(trainDay.FrameTensor(i), mc.Stage())
		if err != nil {
			log.Fatal(err)
		}
		fms[i] = fm
	}
	mean, std := filter.ChannelStats(fms)
	if err := mc.SetNormalization(mean, std); err != nil {
		log.Fatal(err)
	}
	var samples []train.Sample
	for i := range fms {
		y := float32(0)
		if trainDay.Labels[i] {
			y = 1
		}
		samples = append(samples, train.Sample{X: mc.BuildInput(fms, i), Y: y})
	}
	if _, err := train.Fit(mc.Net(), samples, train.Config{
		Epochs: 8, BatchSize: 16, Seed: 1, BalanceClasses: true,
		Optimizer: train.NewAdam(0.003),
	}); err != nil {
		log.Fatal(err)
	}
	mc.Reset()

	fmt.Println("filtering the test day on the edge ...")
	edge, err := core.NewEdgeNode(core.Config{
		FrameWidth: cfg.Width, FrameHeight: cfg.Height, FPS: cfg.FPS,
		Base: base, UploadBitrate: 60_000, KeepReconstructions: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := edge.Deploy(mc, 0.9); err != nil {
		log.Fatal(err)
	}
	dc := core.NewDatacenter()
	for i := 0; i < testDay.Cfg.Frames; i++ {
		ups, err := edge.ProcessFrame(testDay.Frame(i))
		if err != nil {
			log.Fatal(err)
		}
		dc.ReceiveAll(ups)
	}
	tail, err := edge.Flush()
	if err != nil {
		log.Fatal(err)
	}
	dc.ReceiveAll(tail)

	st := edge.Stats()
	pred := dc.PredictedLabels("people-with-red", testDay.Cfg.Frames)
	r := metrics.Evaluate(testDay.Labels, pred)
	fmt.Printf("uploaded %d frames (%.1f kb/s); event F1 %.3f (P %.3f, R %.3f)\n",
		st.UploadedFrames, st.AverageUploadBitrate(cfg.FPS)/1000, r.F1, r.Precision, r.Recall)

	// Demand-fetch 2 seconds of context before the first received
	// event, at a lower bitrate, from the edge's archived stream.
	uploads := dc.Uploads("people-with-red")
	if len(uploads) == 0 {
		fmt.Println("no events detected; nothing to demand-fetch")
		return
	}
	first := uploads[0]
	ctxStart := first.Start - 2*cfg.FPS
	if ctxStart < 0 {
		ctxStart = 0
	}
	frames, bits, err := dc.DemandFetch(edge, testDay, ctxStart, first.Start, 30_000)
	if err != nil {
		log.Fatal(err)
	}
	quality := vision.PSNR(testDay.Frame(ctxStart), frames[0])
	fmt.Printf("demand-fetched context [%d,%d): %d frames, %d bits, first-frame PSNR %.1f dB\n",
		ctxStart, first.Start, len(frames), bits, quality)
}
