// Pedestrian: the paper's Jackson scenario end to end.
//
// An application developer trains a localized binary classifier to
// detect pedestrians in the crosswalks (the Jackson dataset's task),
// deploys it to an edge node, and the datacenter evaluates what
// arrives against ground truth. This is the workflow of §3.2: train
// offline on day one, filter day two on the edge.
//
// Run with: go run ./examples/pedestrian   (takes a couple of minutes)
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/event"
	"repro/internal/filter"
	"repro/internal/metrics"
	"repro/internal/mobilenet"
	"repro/internal/pretrain"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	trainDay := dataset.Generate(dataset.Jackson(96, 900, 1))
	testDay := dataset.Generate(dataset.Jackson(96, 900, 2))
	cfg := trainDay.Cfg

	fmt.Println("pretraining the base DNN (stands in for ImageNet weights) ...")
	base := mobilenet.New(mobilenet.Config{WidthMult: 0.25, BatchNorm: true, Seed: 42})
	if _, err := pretrain.Run(base, pretrain.Config{Seed: 43, Log: os.Stdout}); err != nil {
		log.Fatal(err)
	}

	// Build the MC: localized binary classifier over the crosswalk
	// crop, tapping a middle base-DNN stage (§3.4's size heuristic at
	// this scale picks conv3_2/sep).
	crop := cfg.Region()
	mc, err := filter.NewMC(filter.Spec{
		Name: "pedestrian", Arch: filter.LocalizedBinary,
		Stage: "conv3_2/sep", Crop: &crop, Seed: 7,
	}, base, cfg.Width, cfg.Height)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("extracting training-day features ...")
	fms := make([]*tensor.Tensor, cfg.Frames)
	for i := range fms {
		fm, err := base.Extract(trainDay.FrameTensor(i), mc.Stage())
		if err != nil {
			log.Fatal(err)
		}
		fms[i] = fm
	}
	mean, std := filter.ChannelStats(fms)
	if err := mc.SetNormalization(mean, std); err != nil {
		log.Fatal(err)
	}

	fmt.Println("training the microclassifier ...")
	var samples []train.Sample
	for i := range fms {
		y := float32(0)
		if trainDay.Labels[i] {
			y = 1
		}
		samples = append(samples, train.Sample{X: mc.BuildInput(fms, i), Y: y})
	}
	if _, err := train.Fit(mc.Net(), samples, train.Config{
		Epochs: 8, BatchSize: 16, Seed: 1, BalanceClasses: true,
		Optimizer: train.NewAdam(0.003),
	}); err != nil {
		log.Fatal(err)
	}

	// Tune the decision threshold on the training day.
	scores := make([]float32, len(fms))
	mc.Reset()
	for _, fm := range fms {
		for _, c := range mc.Push(fm) {
			scores[c.Frame] = c.Prob
		}
	}
	for _, c := range mc.Flush() {
		scores[c.Frame] = c.Prob
	}
	var grid []float32
	for t := float32(0.05); t < 1; t += 0.05 {
		grid = append(grid, t)
	}
	_, threshold := metrics.BestF1(trainDay.Labels, scores, grid, func(raw []bool) []bool {
		return event.SmoothKofN(raw, event.DefaultN, event.DefaultK)
	})
	mc.Reset()

	fmt.Printf("deploying at threshold %.2f and filtering the test day ...\n", threshold)
	edge, err := core.NewEdgeNode(core.Config{
		FrameWidth: cfg.Width, FrameHeight: cfg.Height, FPS: cfg.FPS,
		Base: base, UploadBitrate: 60_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := edge.Deploy(mc, threshold); err != nil {
		log.Fatal(err)
	}
	dc := core.NewDatacenter()
	for i := 0; i < testDay.Cfg.Frames; i++ {
		ups, err := edge.ProcessFrame(testDay.Frame(i))
		if err != nil {
			log.Fatal(err)
		}
		dc.ReceiveAll(ups)
	}
	tail, err := edge.Flush()
	if err != nil {
		log.Fatal(err)
	}
	dc.ReceiveAll(tail)

	st := edge.Stats()
	pred := dc.PredictedLabels("pedestrian", testDay.Cfg.Frames)
	r := metrics.Evaluate(testDay.Labels, pred)
	fmt.Printf("\ntest day: %d frames, uploaded %d frames (%.1f kb/s)\n",
		st.Frames, st.UploadedFrames, st.AverageUploadBitrate(cfg.FPS)/1000)
	fmt.Printf("event precision %.3f, event recall %.3f, event F1 %.3f\n", r.Precision, r.Recall, r.F1)
}
