// Quickstart: the smallest end-to-end FilterForward loop.
//
// It builds a base DNN, deploys one microclassifier on an edge node,
// streams a short synthetic camera feed through it, and prints what
// would be uploaded to the datacenter. The MC here is untrained with a
// permissive threshold, so the point is the plumbing, not accuracy —
// see examples/pedestrian and examples/redclothing for trained
// pipelines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/filter"
	"repro/internal/mobilenet"
)

func main() {
	// A 20-second synthetic camera stream (Jackson-style scene).
	d := dataset.Generate(dataset.Jackson(96, 300, 1))
	cfg := d.Cfg

	// The shared feature extractor: one base DNN for all applications.
	base := mobilenet.New(mobilenet.Config{WidthMult: 0.25, BatchNorm: true, Seed: 42})

	// One application's microclassifier: a localized binary classifier
	// over the crosswalk region's feature maps.
	crop := cfg.Region()
	mc, err := filter.NewMC(filter.Spec{
		Name: "quickstart-mc",
		Arch: filter.LocalizedBinary,
		Crop: &crop,
		Seed: 7,
	}, base, cfg.Width, cfg.Height)
	if err != nil {
		log.Fatal(err)
	}

	// The edge node: decode -> base DNN -> MCs -> smooth -> re-encode
	// matched segments -> uplink.
	edge, err := core.NewEdgeNode(core.Config{
		FrameWidth: cfg.Width, FrameHeight: cfg.Height, FPS: cfg.FPS,
		Base:            base,
		UploadBitrate:   50_000,  // re-encode matched segments at 50 kb/s
		UplinkBandwidth: 200_000, // a 200 kb/s link
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := edge.Deploy(mc, 0.45); err != nil {
		log.Fatal(err)
	}

	dc := core.NewDatacenter()
	for i := 0; i < cfg.Frames; i++ {
		uploads, err := edge.ProcessFrame(d.Frame(i))
		if err != nil {
			log.Fatal(err)
		}
		for _, u := range uploads {
			fmt.Printf("upload: event %d frames [%d,%d) %d bits\n", u.EventID, u.Start, u.End, u.Bits)
		}
		dc.ReceiveAll(uploads)
	}
	tail, err := edge.Flush()
	if err != nil {
		log.Fatal(err)
	}
	dc.ReceiveAll(tail)

	st := edge.Stats()
	fmt.Printf("\nprocessed %d frames; uploaded %d frames in %d segments (%.1f kb/s average)\n",
		st.Frames, st.UploadedFrames, st.Uploads, st.AverageUploadBitrate(cfg.FPS)/1000)
}
